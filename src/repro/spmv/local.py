"""Per-process pieces of the distributed SpMV: local matrix and kernel.

Besides the plain kernel (:func:`local_spmv`) this module carries the
ABFT variant (:func:`checked_spmv`): the classic checksum-vector
cross-check ``sum(y) == (colsum A_local) @ x`` that catches a silent
flip in the local compute at the cost of one extra dot product, plus
the seed-deterministic compute-flip injector it is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..errors import PlanError
from ..partition.base import Partition
from ..simmpi.integrity import corrupt_draw

__all__ = [
    "LocalBlock",
    "split_matrix",
    "local_spmv",
    "abft_checksum",
    "checked_spmv",
]


@dataclass
class LocalBlock:
    """One process's share of the matrix and vector.

    ``rows`` are the owned global row indices; ``A_local`` keeps global
    column indexing (columns are resolved through the gathered x
    buffer); ``x_own`` are the owned input-vector values, conformal
    with ``rows``.
    """

    rank: int
    rows: np.ndarray
    A_local: sp.csr_matrix
    x_own: np.ndarray

    @property
    def nnz(self) -> int:
        """Local nonzero count (compute load)."""
        return int(self.A_local.nnz)


def split_matrix(
    A: sp.spmatrix, partition: Partition, x: np.ndarray
) -> list[LocalBlock]:
    """Distribute ``A``'s rows and ``x``'s entries per the partition."""
    A = sp.csr_matrix(A)
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise PlanError("row-parallel SpMV needs a square matrix")
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (n,):
        raise PlanError(f"x has shape {x.shape}, expected ({n},)")
    blocks = []
    for p in range(partition.K):
        rows = partition.rows_of(p)
        blocks.append(
            LocalBlock(
                rank=p,
                rows=rows,
                A_local=A[rows, :].tocsr(),
                x_own=x[rows].copy(),
            )
        )
    return blocks


def local_spmv(block: LocalBlock, x_full: np.ndarray) -> np.ndarray:
    """The local compute phase: ``y_local = A_local @ x_full``.

    ``x_full`` is the length-``n`` buffer holding the process's own x
    entries plus everything received in the communication phase;
    entries the local rows never touch may hold garbage.
    """
    return block.A_local @ np.asarray(x_full, dtype=np.float64)


def abft_checksum(block: LocalBlock) -> np.ndarray:
    """The ABFT checksum vector: column sums of ``A_local``.

    With ``u[j] = sum_i A_local[i, j]`` the identity
    ``sum(A_local @ x) == u @ x`` holds in exact arithmetic for any
    ``x``, so one extra dot product per iteration cross-checks the
    whole local multiply.  Columns the local rows never touch have
    ``u[j] == 0``, which is exactly why garbage in unused ``x_full``
    entries cannot pollute the check.
    """
    return np.asarray(block.A_local.sum(axis=0), dtype=np.float64).ravel()


def _inject_compute_flip(
    y: np.ndarray, seed: int, rank: int, iteration: int
) -> np.ndarray:
    """Flip one high-order bit of one element of a copy of ``y``.

    Models the *detectable* kind of silent compute corruption: a flip
    in the exponent or high mantissa of a float64, which perturbs the
    value by at least a few percent of its magnitude.  Flips of the
    low mantissa bits are numerically indistinguishable from roundoff
    and deliberately out of the injected model — an error smaller
    than the kernel's own noise floor is not a corruption any checksum
    scheme (or consumer) could meaningfully distinguish.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence((int(seed), 0xABF7, int(rank), int(iteration)))
    )
    out = np.array(y, dtype=np.float64, copy=True)
    i = int(rng.integers(0, out.size))
    bit = int(rng.integers(55, 63))  # high exponent bits: >= 2x magnitude
    bits = out.view(np.uint64)
    bits[i] ^= np.uint64(1) << np.uint64(bit)
    return out


def checked_spmv(
    block: LocalBlock,
    x_full: np.ndarray,
    *,
    checksum: np.ndarray | None = None,
    flip_prob: float = 0.0,
    flip_seed: int = 0,
    iteration: int = 0,
    rtol: float = 1e-8,
    atol: float = 1e-12,
) -> tuple[np.ndarray, int]:
    """ABFT-checked local compute; returns ``(y_local, flips_caught)``.

    Runs :func:`local_spmv`, optionally injects a seed-deterministic
    compute flip (probability ``flip_prob``, drawn by
    :func:`~repro.simmpi.integrity.corrupt_draw` keyed on
    ``(rank, iteration)`` so the injection commutes with everything
    else in the epoch), then verifies ``sum(y)`` against the checksum
    vector ``u = colsum(A_local)`` (precompute it once with
    :func:`abft_checksum` and pass it in; recomputed here otherwise).
    A failed check recomputes the multiply — recovery is local, no
    communication — and counts one caught flip.

    The tolerance ``atol + rtol * (|u| @ |x|)`` sits ~7 orders of
    magnitude above float64 roundoff for any realistic local size, and
    the comparison is written so a NaN/Inf-poisoned sum also fails it.
    """
    x_full = np.asarray(x_full, dtype=np.float64)
    u = abft_checksum(block) if checksum is None else checksum
    y = block.A_local @ x_full
    if (
        flip_prob > 0.0
        and y.size
        and corrupt_draw(flip_seed, 0xC0DE, block.rank, iteration) < flip_prob
    ):
        y = _inject_compute_flip(y, flip_seed, block.rank, iteration)
    lhs = float(u @ x_full)
    tol = atol + rtol * float(np.abs(u) @ np.abs(x_full))
    if abs(float(np.sum(y)) - lhs) <= tol:
        return y, 0
    # checksum mismatch: silent corruption caught, recompute locally
    return block.A_local @ x_full, 1
