"""Communication pattern of row-parallel SpMV — the paper's workload.

In row-parallel SpMV, process ``p`` owns a set of rows of ``A`` and the
conformal entries of the input vector ``x``.  To compute ``y = A x`` it
needs ``x_j`` for every column ``j`` with a nonzero in one of its rows;
if ``x_j`` lives on another process, that entry must be communicated.
Each (owner, needer) pair exchanges one message carrying the *distinct*
x-entries needed — exactly the ``SendSet`` structure Algorithm 1
regularizes.

Everything here is vectorized over the COO triplets, so million-nonzero
matrices and 16K-way partitions reduce to a few ``np.unique`` calls.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..core.pattern import CommPattern
from ..errors import PlanError
from ..partition.base import Partition

__all__ = ["spmv_pattern", "spmv_needed_entries", "nnz_per_part"]


def _needed_pairs(A: sp.spmatrix, partition: Partition) -> tuple[np.ndarray, np.ndarray]:
    """Distinct (needer process, x index) pairs with off-process owner."""
    A = sp.csr_matrix(A)
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise PlanError("row-parallel SpMV needs a square matrix")
    if partition.n != n:
        raise PlanError(f"partition covers {partition.n} rows, matrix has {n}")
    coo = A.tocoo()
    parts = partition.parts
    needer = parts[coo.row]
    owner = parts[coo.col]
    remote = needer != owner
    needer = needer[remote]
    col = coo.col[remote].astype(np.int64)
    if needer.size == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    key = needer * np.int64(n) + col
    uniq = np.unique(key)
    return (uniq // n).astype(np.int64), (uniq % n).astype(np.int64)


def spmv_pattern(A: sp.spmatrix, partition: Partition) -> CommPattern:
    """The point-to-point pattern of one SpMV under ``partition``.

    Message ``m_pq`` carries the distinct x-entries process ``p`` owns
    and process ``q`` needs; its size in words is that count (8-byte
    values).
    """
    needer, col = _needed_pairs(A, partition)
    K = partition.K
    if needer.size == 0:
        return CommPattern.from_arrays(K, [], [], [])
    owner = partition.parts[col]
    pair_key = owner * np.int64(K) + needer
    uniq, counts = np.unique(pair_key, return_counts=True)
    src = (uniq // K).astype(np.int64)
    dst = (uniq % K).astype(np.int64)
    return CommPattern.from_arrays(K, src, dst, counts.astype(np.int64))


def spmv_needed_entries(
    A: sp.spmatrix, partition: Partition
) -> list[dict[int, np.ndarray]]:
    """Per-process receive lists: ``needed[q][p]`` = x indices ``q`` gets from ``p``.

    The index arrays are sorted, which both sides of the exchange agree
    on — the send side uses the same arrays to pack values, so packing
    and unpacking line up without extra metadata.
    """
    needer, col = _needed_pairs(A, partition)
    K = partition.K
    needed: list[dict[int, np.ndarray]] = [dict() for _ in range(K)]
    if needer.size == 0:
        return needed
    owner = partition.parts[col]
    order = np.lexsort((col, owner, needer))
    needer, owner, col = needer[order], owner[order], col[order]
    boundaries = np.flatnonzero(
        np.diff(needer * np.int64(K) + owner, prepend=-1)
    )
    boundaries = np.append(boundaries, needer.size)
    for b0, b1 in zip(boundaries[:-1], boundaries[1:]):
        q = int(needer[b0])
        p = int(owner[b0])
        needed[q][p] = col[b0:b1].copy()
    return needed


def nnz_per_part(A: sp.spmatrix, partition: Partition) -> np.ndarray:
    """Nonzeros owned by each process (the local compute load)."""
    A = sp.csr_matrix(A)
    row_nnz = np.diff(A.indptr).astype(np.int64)
    return np.bincount(partition.parts, weights=row_nnz, minlength=partition.K).astype(
        np.int64
    )
