"""Persistent-pattern distributed SpMV — the paper's timed kernel.

The paper times "the averages of 100 SpMV iterations": the matrix is
partitioned once, the communication pattern and (for STFW) the plan and
per-stage receive counts are set up once, and only the repeated
exchange + multiply is measured.  :class:`PersistentSpMV` mirrors that
structure: construction does all amortizable work; :meth:`multiply`
runs one verified iteration on the emulator; :meth:`average_time_us`
reports the mean virtual time over several iterations (deterministic,
but exercised through the full emulator path each time).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..core.pattern import CommPattern
from ..core.plan import CommPlan, build_plan
from ..core.stfw import recv_counts_from_plan, stfw_process
from ..core.vpt import VirtualProcessTopology
from ..errors import PlanError
from ..partition.base import Partition
from ..simmpi.runtime import run_spmd
from .local import local_spmv, split_matrix
from .pattern import spmv_needed_entries, spmv_pattern

__all__ = ["PersistentSpMV"]


class PersistentSpMV:
    """A distributed ``y = A x`` with amortized communication setup.

    Parameters
    ----------
    A:
        Square sparse matrix.
    partition:
        Row partition over ``K`` processes.
    vpt:
        Store-and-forward topology; ``None`` selects the direct (BL)
        exchange.
    machine:
        Optional machine model for virtual timing.
    verify:
        Check every :meth:`multiply` against the sequential product.
    """

    def __init__(
        self,
        A: sp.spmatrix,
        partition: Partition,
        *,
        vpt: VirtualProcessTopology | None = None,
        machine=None,
        verify: bool = True,
    ):
        A = sp.csr_matrix(A)
        if A.shape[0] != A.shape[1]:
            raise PlanError("row-parallel SpMV needs a square matrix")
        if partition.n != A.shape[0]:
            raise PlanError(
                f"partition covers {partition.n} rows, matrix has {A.shape[0]}"
            )
        if vpt is not None and vpt.K != partition.K:
            raise PlanError(f"vpt has K={vpt.K}, partition has K={partition.K}")
        self.A = A
        self.partition = partition
        self.vpt = vpt
        self.machine = machine
        self.verify = verify

        # --- one-time setup (what the paper amortizes) -----------------
        self.pattern: CommPattern = spmv_pattern(A, partition)
        self._needed = spmv_needed_entries(A, partition)
        self._rows = [partition.rows_of(p) for p in range(partition.K)]
        self.plan: CommPlan | None = None
        self._counts = None
        if vpt is not None:
            self.plan = build_plan(self.pattern, vpt)
            self._counts = recv_counts_from_plan(self.plan)

    @property
    def K(self) -> int:
        """Number of processes."""
        return self.partition.K

    def multiply(self, x: np.ndarray) -> tuple[np.ndarray, float]:
        """One distributed SpMV iteration: returns ``(y, makespan_us)``."""
        A = self.A
        n = A.shape[0]
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (n,):
            raise PlanError(f"x has shape {x.shape}, expected ({n},)")

        blocks = split_matrix(A, self.partition, x)
        send_data: list[dict[int, np.ndarray]] = [dict() for _ in range(self.K)]
        for q in range(self.K):
            for p, idx in self._needed[q].items():
                send_data[p][q] = x[idx]

        needed = self._needed
        vpt = self.vpt
        counts = self._counts

        def rank_fn(comm):
            x_full = np.zeros(n, dtype=np.float64)
            block = blocks[comm.rank]
            x_full[block.rows] = block.x_own
            if vpt is None:
                for dst, payload in send_data[comm.rank].items():
                    comm.send(dst, payload, tag=0, words=len(payload))
                for _ in range(len(needed[comm.rank])):
                    src, _, payload = yield comm.recv(tag=0)
                    x_full[needed[comm.rank][src]] = payload
            else:
                received = yield from stfw_process(
                    comm, vpt, send_data[comm.rank], counts[:, comm.rank]
                )
                for src, payload in received:
                    x_full[needed[comm.rank][src]] = payload
            return local_spmv(block, x_full)

        run = run_spmd(self.K, rank_fn, machine=self.machine)
        y = np.zeros(n, dtype=np.float64)
        for p in range(self.K):
            y[self._rows[p]] = run.returns[p]

        if self.verify:
            y_ref = A @ x
            if not np.allclose(y, y_ref, rtol=1e-10, atol=1e-12):
                raise PlanError("persistent SpMV result mismatch")
        return y, run.makespan_us

    def average_time_us(self, x: np.ndarray, iterations: int = 5) -> float:
        """Mean virtual time of ``iterations`` full multiply calls."""
        if iterations < 1:
            raise PlanError("iterations must be >= 1")
        total = 0.0
        y = np.asarray(x, dtype=np.float64)
        for _ in range(iterations):
            y, t = self.multiply(y)
            norm = np.linalg.norm(y)
            if norm > 0:
                y = y / norm  # keep the iterate bounded (power-iteration style)
            total += t
        return total / iterations
