"""Persistent-pattern distributed SpMV — the paper's timed kernel.

The paper times "the averages of 100 SpMV iterations": the matrix is
partitioned once, the communication pattern and (for STFW) the plan and
per-stage receive counts are set up once, and only the repeated
exchange + multiply is measured.  :class:`PersistentSpMV` mirrors that
structure: construction does all amortizable work; :meth:`multiply`
runs one verified iteration on the emulator; :meth:`average_time_us`
reports the mean virtual time over several iterations (deterministic,
but exercised through the full emulator path each time).

:class:`PersistentExchangeService` generalizes the amortized state into
a **self-healing long-lived service**: the paper's static-pattern,
healthy-machine assumptions are both dropped.  Pattern drift is
absorbed through incremental plan repair
(:func:`~repro.core.plan.repair_plan`) with the ``recv_counts`` and
fault-tolerance side tables repaired alongside
(:func:`~repro.core.stfw.repair_side_tables`) — never a full rebuild —
and injected faults are answered by walking the
:data:`~repro.simmpi.policy.ESCALATION_LADDER`: planned fast path →
jittered retry → e-cube detour reroute with pre-suspected peers →
``Comm.shrink()`` agreement + NBX recv-set rediscovery + crash-mask
repair → degraded partial results with explicit per-pair accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace

import numpy as np
import scipy.sparse as sp

from ..core.pattern import CommPattern, PatternDelta
from ..core.plan import CommPlan, build_plan, plans_identical, repair_plan
from ..core.stfw import (
    ExchangeResult,
    SideTables,
    _default_payloads,
    repair_side_tables,
    run_exchange,
    side_tables_from_plan,
    stfw_process,
)
from ..core.vpt import VirtualProcessTopology
from ..errors import DeadlockError, PlanError
from ..metrics.resilience import delivered_pairs, expected_pairs
from ..partition.base import Partition
from ..simmpi.discovery import DiscoveryStats, nbx_discover
from ..simmpi.faults import FaultPlan
from ..simmpi.policy import EscalationPolicy, PolicyConfig
from ..simmpi.runtime import run_spmd
from .local import checked_spmv, local_spmv, split_matrix
from .pattern import spmv_needed_entries, spmv_pattern

__all__ = ["EpochReport", "PersistentExchangeService", "PersistentSpMV"]


@dataclass
class EpochReport:
    """What one service epoch did and what it cost.

    ``action`` is the highest escalation rung the epoch reached (one of
    :data:`~repro.simmpi.policy.ESCALATION_LADDER`).  ``expected`` /
    ``delivered`` count the epoch's countable ``(src, dst)`` pairs —
    pairs touching a crashed rank are uncountable, not failed — and
    ``missing`` names the countable pairs that did not arrive (the
    degraded-mode explicit accounting; empty unless ``action`` is
    ``"degraded"``).  ``dead`` is the permanently-dead set *after* the
    epoch; ``crashed`` the engine crashes observed *during* it.

    The integrity fields account for silent data corruption:
    ``detected_corruptions`` counts deliveries this epoch whose
    content failed a check (endpoint verification on the fast path,
    per-hop checksums on the tolerant path); ``implicated`` names the
    forwarders per-hop evidence pinned those corruptions on;
    ``quarantined`` is the forwarder set the epoch's exchange routed
    around; ``corrupt_pairs`` names the pairs whose *final* delivered
    content was still wrong after all recovery — non-empty forces the
    ``degraded`` rung and must stay empty for bit-identical
    convergence.
    """

    epoch: int
    action: str
    expected: int
    delivered: int
    missing: tuple[tuple[int, int], ...]
    makespan_us: float
    dead: tuple[int, ...]
    crashed: tuple[int, ...]
    suspects: tuple[int, ...]
    repaired: bool
    detected_corruptions: int = 0
    implicated: tuple[int, ...] = ()
    quarantined: tuple[int, ...] = ()
    corrupt_pairs: tuple[tuple[int, int], ...] = ()
    result: ExchangeResult | None = None

    @property
    def completion_rate(self) -> float:
        """Delivered fraction of countable pairs (1.0 when none)."""
        if self.expected == 0:
            return 1.0
        return self.delivered / self.expected


class PersistentExchangeService:
    """A long-lived, self-healing persistent exchange over one pattern.

    Construction is the only from-scratch plan build the service ever
    performs; everything after is incremental.  Each
    :meth:`run_epoch` optionally absorbs a
    :class:`~repro.core.pattern.PatternDelta` (plan **and** side tables
    repaired, byte-identical to recomputation when ``validate`` is on),
    executes one exchange under the caller's
    :class:`~repro.simmpi.faults.FaultPlan`, and escalates through the
    policy ladder exactly as far as the faults force it.

    Parameters
    ----------
    pattern:
        The initial communication pattern.
    vpt:
        Store-and-forward topology (the service is STFW-only: the
        planned fast path *is* the thing being kept alive).
    machine:
        Optional machine model for virtual timing.
    config:
        Escalation budgets; defaults to :class:`PolicyConfig()
        <repro.simmpi.policy.PolicyConfig>`.
    validate:
        Cross-check every repair byte-identical against a from-scratch
        rebuild (plans via :func:`~repro.core.plan.plans_identical`,
        side tables via :func:`~repro.core.stfw.side_tables_from_plan`).
        The rebuild is a *check*, not the service's plan — it never
        feeds back, so ``full_rebuilds`` stays 0 either way.
    artifacts:
        Optional :class:`~repro.cache.ArtifactCache`; repaired plans
        are stored/fetched under delta-keyed content keys so a service
        restarted on the same drift history replays from disk.
    tracer:
        Optional :class:`repro.obs.Tracer`; epochs are mirrored into
        policy-labelled ``service.*`` counters.
    """

    def __init__(
        self,
        pattern: CommPattern,
        vpt: VirtualProcessTopology,
        *,
        machine=None,
        config: PolicyConfig | None = None,
        validate: bool = True,
        artifacts=None,
        tracer=None,
        engine: str = "event",
        workers: int | None = None,
    ):
        if vpt.K != pattern.K:
            raise PlanError(f"pattern K={pattern.K} != vpt K={vpt.K}")
        self.pattern = pattern
        self.vpt = vpt
        self.machine = machine
        #: simulation backend every epoch's exchanges run on; resolved
        #: eagerly so a bad name fails at construction, not mid-soak
        from ..simmpi.engine import resolve_engine

        resolve_engine(engine)
        self.engine = engine
        self.workers = workers
        self.validate = bool(validate)
        self.policy = EscalationPolicy(config)
        self.tracer = tracer
        self._obs = tracer if (tracer is not None and tracer.enabled) else None
        self.plan: CommPlan = build_plan(pattern, vpt)
        self.tables: SideTables = side_tables_from_plan(self.plan)
        self.epoch = 0
        #: incremental repairs applied (drift and crash-mask alike)
        self.repairs = 0
        #: from-scratch rebuilds the service fell back to (target: 0)
        self.full_rebuilds = 0
        #: shrink + rediscovery + crash-mask-repair episodes
        self.shrink_replans = 0
        #: epochs whose repair was validated byte-identical vs rebuild
        self.side_table_checks = 0
        self.degraded_epochs = 0
        #: deliveries caught corrupt by an integrity check (pre-recovery)
        self.detected_corruptions = 0
        #: epochs whose exchange routed around a quarantined forwarder
        self.quarantine_epochs = 0
        self._artifacts = artifacts
        self._base_digest: str | None = None
        self._chain: list[str] = []
        if artifacts is not None:
            from ..cache import pattern_digest

            self._base_digest = pattern_digest(pattern)
        #: dead ∩ stage participants memo; None = recompute
        self._blocked: bool | None = False

    @property
    def K(self) -> int:
        """Number of processes (fixed for the service's lifetime)."""
        return self.vpt.K

    @property
    def dead(self) -> frozenset[int]:
        """Ranks agreed permanently dead via the shrink rung."""
        return frozenset(self.policy.dead)

    # ------------------------------------------------------------------
    # Drift absorption
    # ------------------------------------------------------------------

    def _mask_delta(self, delta: PatternDelta) -> PatternDelta:
        """Drop delta edges that touch a dead rank.

        The live pattern carries no dead edges (the shrink's crash-mask
        removed them), so only *added* edges can reach into the dead
        set; removes/reweights are filtered defensively all the same.
        """
        dead = self.policy.dead
        if not dead:
            return delta
        gone = np.zeros(self.K, dtype=bool)
        gone[list(dead)] = True

        def live(s: np.ndarray, d: np.ndarray) -> np.ndarray:
            return ~(gone[s] | gone[d])

        ka = live(delta.add_src, delta.add_dst)
        kr = live(delta.remove_src, delta.remove_dst)
        kw = live(delta.reweight_src, delta.reweight_dst)
        if ka.all() and kr.all() and kw.all():
            return delta
        return PatternDelta(
            self.K,
            remove_src=delta.remove_src[kr],
            remove_dst=delta.remove_dst[kr],
            add_src=delta.add_src[ka],
            add_dst=delta.add_dst[ka],
            add_size=delta.add_size[ka],
            reweight_src=delta.reweight_src[kw],
            reweight_dst=delta.reweight_dst[kw],
            reweight_size=delta.reweight_size[kw],
        )

    def apply_drift(self, delta: PatternDelta) -> bool:
        """Absorb one drift step incrementally; True if anything changed.

        Repairs the plan and both side tables in lockstep; with
        ``validate`` on, both are cross-checked byte-identical against
        a from-scratch rebuild of the drifted pattern.  A repair that
        cannot apply (foreign delta) falls back to the rebuild and is
        counted in ``full_rebuilds`` — the counter the chaos gate pins
        at zero.
        """
        delta = self._mask_delta(delta)
        if delta.num_changes == 0:
            return False
        try:
            repaired = repair_plan(self.plan, delta)
            tables = repair_side_tables(self.tables, self.plan, repaired, delta)
            self.repairs += 1
        except PlanError:
            drifted = self.pattern.apply_delta(delta)
            repaired = build_plan(drifted, self.vpt)
            tables = side_tables_from_plan(repaired)
            self.full_rebuilds += 1
        if self.validate:
            rebuilt = build_plan(self.pattern.apply_delta(delta), self.vpt)
            if not plans_identical(repaired, rebuilt):
                raise PlanError(
                    f"service plan repair diverged from full rebuild at "
                    f"epoch {self.epoch}"
                )
            ref = side_tables_from_plan(repaired)
            if (
                tables.recv_counts.tobytes() != ref.recv_counts.tobytes()
                or tables.recv_counts.dtype != ref.recv_counts.dtype
                or tables.origin_counts.tobytes() != ref.origin_counts.tobytes()
                or tables.origin_counts.dtype != ref.origin_counts.dtype
            ):
                raise PlanError(
                    f"service side-table repair diverged from "
                    f"recv_counts_from_plan recomputation at epoch {self.epoch}"
                )
            self.side_table_checks += 1
        if self._artifacts is not None:
            from ..cache import delta_digest

            self._chain.append(delta_digest(delta))
            cached = self._artifacts.plan(
                {
                    "base_pattern": self._base_digest,
                    "delta_chain": list(self._chain),
                    "dim_sizes": self.vpt.dim_sizes,
                    "header_words": 0,
                    "repair": True,
                },
                lambda: repaired,
            )
            if self.validate and not plans_identical(cached, repaired):
                raise PlanError(
                    f"delta-keyed cache returned a different plan at "
                    f"epoch {self.epoch}"
                )
        self.plan = repaired
        self.tables = tables
        self.pattern = repaired.pattern
        self._blocked = None
        if self._obs is not None:
            self._obs.count("service.repairs", 1)
        return True

    # ------------------------------------------------------------------
    # Fault escalation
    # ------------------------------------------------------------------

    @staticmethod
    def _corrupt_delivered(result: ExchangeResult, pat: CommPattern):
        """Pairs whose delivered content fails the self-describing check.

        The service's synthetic payloads carry ``[src * K + dst] *
        size`` (see :func:`~repro.core.stfw._default_payloads`), so
        every delivery can be verified at the endpoint without any
        side channel — the service-level analogue of an application
        checksum over its own traffic.  This is the only integrity
        check the unchecksummed planned fast path has, and the
        ground-truth oracle for the checked paths.
        """
        K = pat.K
        sizes = {
            (int(s), int(t)): int(w)
            for s, t, w in zip(pat.src, pat.dst, pat.size)
        }
        bad = set()
        for dst, msgs in enumerate(result.delivered):
            if not msgs:
                # dead (crash-masked) ranks deliver nothing: their slot
                # is None, and they have no countable pairs to check
                continue
            for src, payload in msgs:
                src = int(src)
                want = sizes.get((src, dst))
                p = np.asarray(payload)
                if (
                    want is None
                    or p.shape != (want,)
                    or p.dtype != np.int64
                    or not bool((p == src * K + dst).all())
                ):
                    bad.add((src, dst))
        return tuple(sorted(bad))

    def _planned_blocked(self) -> bool:
        """True when a dead rank still participates in a planned stage.

        Dead *endpoints* left the pattern with the crash-mask, but a
        dead rank can remain a planned *forwarder* for live pairs —
        dimension-ordered holders are structural, not rebuilt away —
        in which case the planned fast path would strand those pairs
        and the service stays on the tolerant (detouring) rung.
        """
        if self._blocked is None:
            dead = np.array(sorted(self.policy.dead), dtype=np.int64)
            blocked = False
            if dead.size:
                for st in self.plan.stages:
                    if (
                        np.isin(st.sender, dead).any()
                        or np.isin(st.receiver, dead).any()
                    ):
                        blocked = True
                        break
            self._blocked = blocked
        return self._blocked

    def _with_dead(self, fault_plan: FaultPlan | None) -> FaultPlan | None:
        """The caller's fault plan with the agreed dead crashed at t=0.

        The engine would otherwise happily run a rank the service
        already shrank away — it must stay dead across every later
        epoch, whatever faults the caller injects on top.
        """
        dead = self.policy.dead
        if not dead:
            return fault_plan
        crashes = {int(r): 0.0 for r in dead}
        if fault_plan is None:
            return FaultPlan(crashes=crashes)
        merged = dict(fault_plan.crashes)
        merged.update(crashes)
        return _dc_replace(fault_plan, crashes=merged)

    def run_epoch(
        self,
        delta: PatternDelta | None = None,
        *,
        fault_plan: FaultPlan | None = None,
        trace: bool = False,
    ) -> EpochReport:
        """Absorb ``delta`` (if any), run one exchange, escalate as needed.

        The epoch starts on the cheapest viable rung: the planned fast
        path (precomputed ``tables.recv_counts``) whenever no peer is
        suspected and no dead rank blocks a planned route.  A fault
        escalates *within the same epoch* to the tolerant exchange —
        jittered retries, e-cube detours around (pre-)suspected peers —
        and suspicion that hardens past the policy's ``shrink_after``
        budget triggers the shrink rung: crash agreement, NBX recv-set
        rediscovery over the survivors, crash-mask repair.  Countable
        pairs still missing after all that put the epoch in degraded
        mode with the missing pairs named in the report.

        Integrity is verified end to end: every delivery is checked
        against the service's self-describing payloads, a failed check
        on the (unchecksummed) fast path escalates within the epoch to
        the checked tolerant path, per-hop implication evidence feeds
        the policy's quarantine rung — the next exchanges route around
        the corrupt forwarder without shrinking it — and content still
        wrong after all recovery degrades the epoch with the corrupt
        pairs named.
        """
        self.epoch += 1
        repaired = False
        if delta is not None:
            repaired = self.apply_drift(delta)
        pat = self.pattern
        payloads = _default_payloads(pat)
        suspects = self.policy.suspects()
        quarantined_now = self.policy.quarantined()
        corrupt_watch = self.policy.corrupt_suspects()
        dead_before = tuple(sorted(self.policy.dead))
        fp = self._with_dead(fault_plan)

        action = "healthy"
        detected = 0
        result: ExchangeResult | None = None
        if not suspects and not corrupt_watch and not self._planned_blocked():
            # the event engine salvages a fault hang as a partial
            # result; the sharded engine cannot fill the salvage sinks
            # (they live in the coordinator), so there a hang raises
            # and escalation happens through the except arm instead
            try:
                result = run_exchange(
                    pat,
                    self.vpt,
                    payloads=payloads,
                    machine=self.machine,
                    fault_plan=fp,
                    on_fault="partial" if self.engine == "event" else "raise",
                    trace=trace,
                    tracer=self.tracer,
                    engine=self.engine,
                    workers=self.workers,
                )
            except DeadlockError:
                result = None
            if result is not None:
                new_crashes = set(int(r) for r in result.crashed) - set(dead_before)
                bad = (
                    self._corrupt_delivered(result, pat)
                    if result.completed
                    else ()
                )
                if not result.completed or new_crashes or bad:
                    # escalate within the epoch: the fast path has no
                    # inline detection, so a failed endpoint check means
                    # re-running the epoch on the checked tolerant path
                    detected += len(bad)
                    result = None
        faulty: set[int] = set()
        implicated_events: list[int] = []
        if result is None:
            pre = tuple(
                sorted(
                    set(self.policy.breaker.open_peers()) | set(dead_before)
                )
            )
            knobs = self.policy.config.ft_knobs(
                suspected=pre, quarantined=quarantined_now
            )
            result = run_exchange(
                pat,
                self.vpt,
                payloads=payloads,
                machine=self.machine,
                fault_plan=fp,
                on_fault="tolerate",
                trace=trace,
                tracer=self.tracer,
                engine=self.engine,
                workers=self.workers,
                **knobs,
            )
            crashed_now = set(int(r) for r in result.crashed) - set(dead_before)
            reported = set()
            if result.reports:
                for rep in result.reports:
                    if rep is not None:
                        reported.update(rep.dead_peers)
                        implicated_events.extend(rep.implicated)
            reported -= set(pre)
            faulty = crashed_now | reported
            detected += len(implicated_events)
            action = "reroute" if (faulty or suspects or pre) else "retry"
            if detected and action == "retry":
                # corruption recovery is a detour + direct re-send,
                # not a plain retransmission
                action = "reroute"
            if quarantined_now:
                action = "quarantine"
                self.quarantine_epochs += 1

        # observations drive the ladder for the *next* epochs
        clean = set(range(self.K)) - set(dead_before) - faulty
        implicated = tuple(sorted(set(implicated_events)))
        self.policy.note_epoch(faulty, clean, corrupt_peers=implicated)

        if self.policy.to_shrink():
            self._shrink_replan(self.policy.to_shrink())
            action = "shrink"

        crashed_now = tuple(
            sorted(set(int(r) for r in result.crashed) - set(dead_before))
        )
        uncountable = set(dead_before) | set(crashed_now) | self.policy.dead
        corrupt_pairs = tuple(
            (s, d)
            for s, d in self._corrupt_delivered(result, pat)
            if s not in uncountable and d not in uncountable
        )
        expected = expected_pairs(pat, uncountable)
        got = delivered_pairs(result.delivered) - set(corrupt_pairs)
        missing = tuple(sorted(expected - got))
        if missing or corrupt_pairs:
            action = "degraded"
            self.degraded_epochs += 1
        self.detected_corruptions += detected
        report = EpochReport(
            epoch=self.epoch,
            action=action,
            expected=len(expected),
            delivered=len(expected & got),
            missing=missing,
            makespan_us=result.run.makespan_us,
            dead=tuple(sorted(self.policy.dead)),
            crashed=crashed_now,
            suspects=suspects,
            repaired=repaired,
            detected_corruptions=detected,
            implicated=implicated,
            quarantined=quarantined_now,
            corrupt_pairs=corrupt_pairs,
            result=result,
        )
        if self._obs is not None:
            self._obs.count("service.epochs", 1, action=action)
            if missing:
                self._obs.count("service.missing_pairs", len(missing))
            if detected:
                self._obs.count("service.integrity_detected", detected)
            if corrupt_pairs:
                self._obs.count("service.corrupt_pairs", len(corrupt_pairs))
        return report

    def _shrink_replan(self, peers: tuple[int, ...]) -> None:
        """The shrink rung: agree, rediscover, crash-mask repair.

        Runs an emulated agreement round over the machine — survivors
        ``shrink()`` to fix the dead set, then rediscover their
        recv-sets from send-sets alone (``nbx_discover`` with the
        agreed dead masked) rather than trusting pre-crash state —
        and only then repairs the plan with a delta removing every
        edge touching the newly dead.  No rebuild: the crash mask goes
        through the same incremental path as ordinary drift.
        """
        newly = tuple(sorted(set(int(p) for p in peers) - self.policy.dead))
        if not newly:
            return
        all_dead = tuple(sorted(set(newly) | self.policy.dead))
        pat = self.pattern
        tracer = self.tracer

        def worker(comm):
            agreed = yield comm.shrink()
            # stats ride the worker's return value (not a parent-side
            # list): with the sharded engine the generator runs in a
            # forked process whose mutations the parent never sees
            st = DiscoveryStats()
            recvset = yield from nbx_discover(
                comm,
                pat.sendset(comm.rank),
                dead=set(agreed),
                tracer=tracer,
                stats=st,
            )
            return (agreed, recvset, st)

        res = run_spmd(
            self.K,
            worker,
            machine=self.machine,
            fault_plan=FaultPlan(crashes={r: 0.0 for r in all_dead}),
            tracer=tracer,
            engine=self.engine,
            workers=self.workers,
        )
        gone = set(all_dead)
        src, dst, size = pat.src, pat.dst, pat.size
        for r in range(self.K):
            if r in gone:
                continue
            agreed, recvset, _ = res.returns[r]
            if tuple(agreed) != all_dead:
                raise PlanError(
                    f"shrink agreement at epoch {self.epoch} gave rank {r} "
                    f"dead set {tuple(agreed)!r}, expected {all_dead!r}"
                )
            want = {
                int(s): int(w)
                for s, w in zip(src[dst == r], size[dst == r])
                if int(s) not in gone
            }
            if recvset != want:
                raise PlanError(
                    f"post-shrink NBX rediscovery at epoch {self.epoch} gave "
                    f"rank {r} recv-set {recvset!r}, expected {want!r}"
                )
        # crash-mask repair BEFORE declaring the peers dead: once they
        # are in the dead set, _mask_delta would filter the mask itself
        key = np.array(newly, dtype=np.int64)
        mask = np.isin(src, key) | np.isin(dst, key)
        if mask.any():
            self.apply_drift(
                PatternDelta(
                    self.K, remove_src=src[mask], remove_dst=dst[mask]
                )
            )
        self.policy.declare_dead(newly)
        self._blocked = None
        self.shrink_replans += 1
        if self._obs is not None:
            self._obs.count("service.shrink_replans", 1)
            self._obs.count(
                "service.discovery_frames",
                sum(
                    ret[2].frames_received
                    for ret in res.returns
                    if ret is not None
                ),
            )


class PersistentSpMV:
    """A distributed ``y = A x`` with amortized communication setup.

    Parameters
    ----------
    A:
        Square sparse matrix.
    partition:
        Row partition over ``K`` processes.
    vpt:
        Store-and-forward topology; ``None`` selects the direct (BL)
        exchange.
    machine:
        Optional machine model for virtual timing.
    verify:
        Check every :meth:`multiply` against the sequential product.
    abft:
        Run every local multiply through the ABFT checksum-vector
        cross-check (:func:`~repro.spmv.local.checked_spmv`) even
        when no compute faults are injected.  The checksum vectors
        are amortized like the communication plan: computed lazily
        once and reused across iterations.
    """

    def __init__(
        self,
        A: sp.spmatrix,
        partition: Partition,
        *,
        vpt: VirtualProcessTopology | None = None,
        machine=None,
        verify: bool = True,
        abft: bool = False,
        engine: str = "event",
        workers: int | None = None,
    ):
        A = sp.csr_matrix(A)
        if A.shape[0] != A.shape[1]:
            raise PlanError("row-parallel SpMV needs a square matrix")
        if partition.n != A.shape[0]:
            raise PlanError(
                f"partition covers {partition.n} rows, matrix has {A.shape[0]}"
            )
        if vpt is not None and vpt.K != partition.K:
            raise PlanError(f"vpt has K={vpt.K}, partition has K={partition.K}")
        self.A = A
        self.partition = partition
        self.vpt = vpt
        self.machine = machine
        from ..simmpi.engine import resolve_engine

        resolve_engine(engine)
        self.engine = engine
        self.workers = workers
        self.verify = verify
        self.abft = bool(abft)
        #: compute flips the ABFT check caught (and recovered locally)
        self.abft_flips_caught = 0
        self._abft_u: list[np.ndarray] | None = None

        # --- one-time setup (what the paper amortizes) -----------------
        self.pattern: CommPattern = spmv_pattern(A, partition)
        self._needed = spmv_needed_entries(A, partition)
        self._rows = [partition.rows_of(p) for p in range(partition.K)]
        self.plan: CommPlan | None = None
        self._counts = None
        #: the amortized state lives in a persistent exchange service —
        #: the drift/fault-capable keeper of plan + side tables
        self.service: PersistentExchangeService | None = None
        if vpt is not None:
            self.service = PersistentExchangeService(
                self.pattern,
                vpt,
                machine=machine,
                validate=False,
                engine=engine,
                workers=workers,
            )
            self.plan = self.service.plan
            self._counts = self.service.tables.recv_counts

    @property
    def K(self) -> int:
        """Number of processes."""
        return self.partition.K

    def _abft_checksums(self) -> list[np.ndarray]:
        """Per-rank ABFT checksum vectors, computed once and reused."""
        if self._abft_u is None:
            self._abft_u = [
                np.asarray(
                    self.A[rows, :].sum(axis=0), dtype=np.float64
                ).ravel()
                for rows in self._rows
            ]
        return self._abft_u

    def multiply(
        self,
        x: np.ndarray,
        *,
        fault_plan: FaultPlan | None = None,
        iteration: int = 0,
    ) -> tuple[np.ndarray, float]:
        """One distributed SpMV iteration: returns ``(y, makespan_us)``.

        ``fault_plan.compute_flips`` injects seed-deterministic silent
        compute corruption into the flagged ranks' local multiplies
        (keyed on ``(rank, iteration)``); any rank with a nonzero flip
        probability — and every rank when the kernel was built with
        ``abft=True`` — runs the ABFT-checked kernel, which catches
        the flip against the checksum vector and recomputes locally.
        Caught flips accumulate in :attr:`abft_flips_caught`.
        """
        A = self.A
        n = A.shape[0]
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (n,):
            raise PlanError(f"x has shape {x.shape}, expected ({n},)")

        blocks = split_matrix(A, self.partition, x)
        send_data: list[dict[int, np.ndarray]] = [dict() for _ in range(self.K)]
        for q in range(self.K):
            for p, idx in self._needed[q].items():
                send_data[p][q] = x[idx]

        needed = self._needed
        vpt = self.vpt
        counts = self._counts
        flips = {} if fault_plan is None else {
            int(r): float(p) for r, p in fault_plan.compute_flips.items()
        }
        flip_seed = 0 if fault_plan is None else fault_plan.seed
        abft = self.abft
        checksums = (
            self._abft_checksums() if (abft or flips) else None
        )

        def rank_fn(comm):
            x_full = np.zeros(n, dtype=np.float64)
            block = blocks[comm.rank]
            x_full[block.rows] = block.x_own
            if vpt is None:
                for dst, payload in send_data[comm.rank].items():
                    comm.send(dst, payload, tag=0, words=len(payload))
                for _ in range(len(needed[comm.rank])):
                    src, _, payload = yield comm.recv(tag=0)
                    x_full[needed[comm.rank][src]] = payload
            else:
                received = yield from stfw_process(
                    comm, vpt, send_data[comm.rank], counts[:, comm.rank]
                )
                for src, payload in received:
                    x_full[needed[comm.rank][src]] = payload
            p = flips.get(comm.rank, 0.0)
            if abft or p > 0.0:
                # the caught count rides the return value: a parent-side
                # list would stay zero under the sharded (forked) engine
                y_local, c = checked_spmv(
                    block,
                    x_full,
                    checksum=checksums[comm.rank],
                    flip_prob=p,
                    flip_seed=flip_seed,
                    iteration=iteration,
                )
                return (y_local, c)
            return (local_spmv(block, x_full), 0)

        run = run_spmd(
            self.K,
            rank_fn,
            machine=self.machine,
            engine=self.engine,
            workers=self.workers,
        )
        y = np.zeros(n, dtype=np.float64)
        caught = 0
        for p in range(self.K):
            y_p, c_p = run.returns[p]
            y[self._rows[p]] = y_p
            caught += c_p
        self.abft_flips_caught += caught

        if self.verify:
            y_ref = A @ x
            if not np.allclose(y, y_ref, rtol=1e-10, atol=1e-12):
                raise PlanError("persistent SpMV result mismatch")
        return y, run.makespan_us

    def average_time_us(
        self,
        x: np.ndarray,
        iterations: int = 5,
        *,
        fault_plan: FaultPlan | None = None,
    ) -> float:
        """Mean virtual time of ``iterations`` full multiply calls."""
        if iterations < 1:
            raise PlanError("iterations must be >= 1")
        total = 0.0
        y = np.asarray(x, dtype=np.float64)
        for i in range(iterations):
            y, t = self.multiply(y, fault_plan=fault_plan, iteration=i)
            norm = np.linalg.norm(y)
            if norm > 0:
                y = y / norm  # keep the iterate bounded (power-iteration style)
            total += t
        return total / iterations
