"""Dependency-free SVG charts for the paper's figures.

The reproduction environment ships no plotting stack, so this module
renders line and bar charts as standalone SVG documents with nothing
but string formatting — enough to *look at* Figure 8's scaling curves
or Figure 9/10's bars in a browser.  The CLI writes them next to the
text tables: ``python -m repro figure8 --svg out/``.

The generic builders (:func:`svg_line_chart`, :func:`svg_bar_chart`)
are public; per-figure adapters live in :func:`experiment_svgs`.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from .errors import ExperimentError

__all__ = ["svg_line_chart", "svg_bar_chart", "experiment_svgs"]

#: categorical series colors (colorblind-friendly)
PALETTE = (
    "#0173b2", "#de8f05", "#029e73", "#d55e00",
    "#cc78bc", "#ca9161", "#fbafe4", "#949494",
    "#ece133", "#56b4e9",
)

_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 64, 24, 36, 46


def _esc(text: str) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(n, 1)
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 5, 10):
        step = mult * mag
        if raw <= step:
            break
    first = math.floor(lo / step) * step
    ticks = []
    t = first
    while t <= hi + step * 0.5:
        ticks.append(round(t, 10))
        t += step
    return ticks


def _log_ticks(lo: float, hi: float) -> list[float]:
    lo_e = math.floor(math.log10(max(lo, 1e-12)))
    hi_e = math.ceil(math.log10(max(hi, 1e-12)))
    return [10.0**e for e in range(lo_e, hi_e + 1)]


class _Frame:
    """Coordinate mapping for one chart body."""

    def __init__(self, width, height, x_lo, x_hi, y_lo, y_hi, log_x=False, log_y=False):
        self.width, self.height = width, height
        self.log_x, self.log_y = log_x, log_y
        self.x_lo, self.x_hi = x_lo, x_hi
        self.y_lo, self.y_hi = y_lo, y_hi
        self.body_w = width - _MARGIN_L - _MARGIN_R
        self.body_h = height - _MARGIN_T - _MARGIN_B

    def _t(self, v, lo, hi, log):
        if log:
            v, lo, hi = math.log10(max(v, 1e-12)), math.log10(max(lo, 1e-12)), math.log10(
                max(hi, 1e-12)
            )
        if hi <= lo:
            return 0.0
        return (v - lo) / (hi - lo)

    def x(self, v: float) -> float:
        return _MARGIN_L + self._t(v, self.x_lo, self.x_hi, self.log_x) * self.body_w

    def y(self, v: float) -> float:
        return (
            _MARGIN_T
            + (1.0 - self._t(v, self.y_lo, self.y_hi, self.log_y)) * self.body_h
        )


def _chrome(frame: _Frame, title: str, xlabel: str, ylabel: str,
            x_ticks, y_ticks, x_fmt=lambda v: f"{v:g}", y_fmt=lambda v: f"{v:g}") -> list[str]:
    parts = [
        f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{frame.body_w}" '
        f'height="{frame.body_h}" fill="none" stroke="#333"/>',
        f'<text x="{frame.width / 2}" y="20" text-anchor="middle" '
        f'font-size="14" font-weight="bold">{_esc(title)}</text>',
        f'<text x="{frame.width / 2}" y="{frame.height - 8}" text-anchor="middle" '
        f'font-size="11">{_esc(xlabel)}</text>',
        f'<text x="14" y="{frame.height / 2}" text-anchor="middle" font-size="11" '
        f'transform="rotate(-90 14 {frame.height / 2})">{_esc(ylabel)}</text>',
    ]
    for t in x_ticks:
        px = frame.x(t)
        parts.append(
            f'<line x1="{px:.1f}" y1="{_MARGIN_T + frame.body_h}" '
            f'x2="{px:.1f}" y2="{_MARGIN_T + frame.body_h + 4}" stroke="#333"/>'
        )
        parts.append(
            f'<text x="{px:.1f}" y="{_MARGIN_T + frame.body_h + 16}" '
            f'text-anchor="middle" font-size="10">{_esc(x_fmt(t))}</text>'
        )
    for t in y_ticks:
        py = frame.y(t)
        parts.append(
            f'<line x1="{_MARGIN_L - 4}" y1="{py:.1f}" x2="{_MARGIN_L}" '
            f'y2="{py:.1f}" stroke="#333"/>'
        )
        parts.append(
            f'<line x1="{_MARGIN_L}" y1="{py:.1f}" '
            f'x2="{_MARGIN_L + frame.body_w}" y2="{py:.1f}" '
            f'stroke="#ddd" stroke-width="0.5"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_L - 8}" y="{py + 3:.1f}" text-anchor="end" '
            f'font-size="10">{_esc(y_fmt(t))}</text>'
        )
    return parts


def _legend(labels: Sequence[str], frame: _Frame) -> list[str]:
    parts = []
    x = _MARGIN_L + 8
    y = _MARGIN_T + 12
    for i, label in enumerate(labels):
        color = PALETTE[i % len(PALETTE)]
        parts.append(
            f'<rect x="{x}" y="{y - 8}" width="10" height="10" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{x + 14}" y="{y + 1}" font-size="10">{_esc(label)}</text>'
        )
        y += 14
    return parts


def svg_line_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    log_x: bool = False,
    log_y: bool = False,
    width: int = 560,
    height: int = 360,
) -> str:
    """Render named (xs, ys) series as an SVG line chart.

    NaN y-values break the line (the Figure 8 convention for schemes
    that do not exist at small K).
    """
    pts = [
        (x, y)
        for xs, ys in series.values()
        for x, y in zip(xs, ys)
        if not (isinstance(y, float) and math.isnan(y))
    ]
    if not pts:
        raise ExperimentError("no data to chart")
    xs_all = [p[0] for p in pts]
    ys_all = [p[1] for p in pts]
    frame = _Frame(
        width, height, min(xs_all), max(xs_all), min(ys_all), max(ys_all),
        log_x=log_x, log_y=log_y,
    )
    x_ticks = (
        sorted(set(xs_all)) if log_x else _nice_ticks(frame.x_lo, frame.x_hi)
    )
    y_ticks = _log_ticks(frame.y_lo, frame.y_hi) if log_y else _nice_ticks(
        frame.y_lo, frame.y_hi
    )
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif">',
        '<rect width="100%" height="100%" fill="white"/>',
    ]
    parts += _chrome(frame, title, xlabel, ylabel, x_ticks, y_ticks)
    for i, (label, (xs, ys)) in enumerate(series.items()):
        color = PALETTE[i % len(PALETTE)]
        run: list[str] = []
        segments: list[list[str]] = []
        for x, y in zip(xs, ys):
            if isinstance(y, float) and math.isnan(y):
                if run:
                    segments.append(run)
                run = []
                continue
            run.append(f"{frame.x(x):.1f},{frame.y(y):.1f}")
        if run:
            segments.append(run)
        for seg in segments:
            parts.append(
                f'<polyline points="{" ".join(seg)}" fill="none" '
                f'stroke="{color}" stroke-width="1.8"/>'
            )
            for pt in seg:
                px, py = pt.split(",")
                parts.append(f'<circle cx="{px}" cy="{py}" r="2.4" fill="{color}"/>')
    parts += _legend(list(series), frame)
    parts.append("</svg>")
    return "\n".join(parts)


def svg_bar_chart(
    groups: Sequence[str],
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    ylabel: str = "",
    log_y: bool = False,
    width: int = 640,
    height: int = 360,
) -> str:
    """Render grouped bars: one cluster per group, one bar per series."""
    vals = [v for vs in series.values() for v in vs if not math.isnan(v)]
    if not vals or not groups:
        raise ExperimentError("no data to chart")
    y_hi = max(vals)
    y_lo = min(min(vals), 0.0) if not log_y else min(vals)
    frame = _Frame(width, height, 0, len(groups), y_lo, y_hi, log_y=log_y)
    y_ticks = _log_ticks(frame.y_lo, frame.y_hi) if log_y else _nice_ticks(
        frame.y_lo, frame.y_hi
    )
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif">',
        '<rect width="100%" height="100%" fill="white"/>',
    ]
    parts += _chrome(frame, title, "", ylabel, [], y_ticks)
    n_series = len(series)
    cluster_w = frame.body_w / len(groups)
    bar_w = cluster_w * 0.8 / max(n_series, 1)
    base_y = frame.y(max(y_lo, min(vals)) if log_y else 0.0)
    for gi, group in enumerate(groups):
        gx = _MARGIN_L + gi * cluster_w + cluster_w * 0.1
        parts.append(
            f'<text x="{gx + cluster_w * 0.4:.1f}" '
            f'y="{_MARGIN_T + frame.body_h + 16}" text-anchor="middle" '
            f'font-size="9">{_esc(group)}</text>'
        )
        for si, (label, vs) in enumerate(series.items()):
            v = vs[gi]
            if math.isnan(v):
                continue
            color = PALETTE[si % len(PALETTE)]
            top = frame.y(v)
            h = abs(base_y - top)
            y0 = min(top, base_y)
            parts.append(
                f'<rect x="{gx + si * bar_w:.1f}" y="{y0:.1f}" '
                f'width="{bar_w * 0.92:.1f}" height="{max(h, 0.5):.1f}" '
                f'fill="{color}"><title>{_esc(label)}: {v:g}</title></rect>'
            )
    parts += _legend(list(series), frame)
    parts.append("</svg>")
    return "\n".join(parts)


def experiment_svgs(name: str, result) -> dict[str, str]:
    """Render an experiment module's result as one or more SVGs.

    Returns ``{filename: svg_document}``; raises for experiments with
    no chart adapter.
    """
    if name == "figure1":
        out = {}
        for row in result:
            xs = list(range(len(row.counts)))
            out[f"figure1_{row.name}.svg"] = svg_line_chart(
                {
                    row.name: (xs, [float(c) for c in row.counts]),
                    "max": (xs, [float(row.mmax)] * len(xs)),
                    "avg": (xs, [row.mavg] * len(xs)),
                },
                title=f"Figure 1 — {row.name}",
                xlabel="process id",
                ylabel="message count",
            )
        return out
    if name == "figure8":
        out = {}
        for s in result:
            out[f"figure8_{s.name}.svg"] = svg_line_chart(
                {
                    scheme: ([float(k) for k in s.k_values], [float(v) for v in vals])
                    for scheme, vals in s.times.items()
                },
                title=f"Figure 8 — {s.name}",
                xlabel="processes",
                ylabel="SpMV time (us)",
                log_x=True,
                log_y=True,
            )
        return out
    if name == "figure9":
        out = {}
        for block in result:
            out[f"figure9_K{block.K}.svg"] = svg_bar_chart(
                block.schemes,
                {m: [float(v) for v in vs] for m, vs in block.comm_us.items()},
                title=f"Figure 9 — {block.K} processes",
                ylabel="comm time (us)",
            )
        return out
    if name == "figure10":
        schemes = list(result[0].stfw_comm_us) if result else []
        return {
            "figure10.svg": svg_bar_chart(
                [r.name for r in result],
                {
                    s: [float(r.stfw_comm_us[s]) for r in result]
                    for s in schemes
                },
                title="Figure 10 — comm time at 16K (BL values omitted)",
                ylabel="comm time (us)",
                log_y=True,
            )
        }
    raise ExperimentError(f"no SVG adapter for experiment {name!r}")
