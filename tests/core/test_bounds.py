"""Section 4 closed forms, verified against the plan simulator."""

import pytest

from repro.core import (
    CommPattern,
    VirtualProcessTopology,
    build_plan,
    buffer_bound_words,
    direct_volume,
    expected_hops_uniform,
    forward_volume,
    loose_volume_bound,
    make_vpt,
    max_message_count_bound,
    uniform_forward_volume,
)
from repro.errors import TopologyError


class TestMessageCountBound:
    def test_asymptotic_family(self):
        K = 256
        assert max_message_count_bound((K,)) == K - 1  # O(K)
        assert max_message_count_bound((16, 16)) == 30  # O(sqrt K)
        assert max_message_count_bound((2,) * 8) == 8  # O(lg K)

    def test_matches_simulated_all_to_all(self):
        K = 64
        p = CommPattern.all_to_all(K)
        for n in (1, 2, 3, 6):
            vpt = make_vpt(K, n)
            plan = build_plan(p, vpt)
            assert plan.max_message_count == max_message_count_bound(vpt.dim_sizes)


class TestVolumeFormulas:
    def test_paper_ratio_examples(self):
        # Section 4, K=256: loose/direct = n, exact/direct as given
        K = 256
        assert loose_volume_bound(K, 4) / direct_volume(K) == pytest.approx(4.0)
        assert uniform_forward_volume(K, 4) / direct_volume(K) == pytest.approx(3.01, abs=0.01)
        assert uniform_forward_volume(K, 8) / direct_volume(K) == pytest.approx(4.02, abs=0.01)
        assert uniform_forward_volume(K, 2) / direct_volume(K) == pytest.approx(1.88, abs=0.01)

    def test_exact_volume_matches_simulation_uniform(self):
        K, s = 64, 5
        p = CommPattern.all_to_all(K, words=s)
        for n in (2, 3, 6):
            vpt = make_vpt(K, n)
            plan = build_plan(p, vpt)
            per_process = plan.total_volume / K
            assert per_process == pytest.approx(uniform_forward_volume(K, n, s))

    def test_general_formula_matches_simulation_nonuniform(self):
        s = 3
        for dims in [(8, 4), (4, 2, 8), (16, 2, 2)]:
            vpt = VirtualProcessTopology(dims)
            p = CommPattern.all_to_all(vpt.K, words=s)
            plan = build_plan(p, vpt)
            assert plan.total_volume / vpt.K == pytest.approx(forward_volume(vpt, s))

    def test_general_reduces_to_uniform(self):
        vpt = VirtualProcessTopology((4, 4, 4))
        assert forward_volume(vpt, 7) == pytest.approx(uniform_forward_volume(64, 3, 7))

    def test_exact_below_loose_bound(self):
        for K, n in [(64, 2), (256, 4), (1024, 5)]:
            assert uniform_forward_volume(K, n) <= loose_volume_bound(K, n)

    def test_n1_equals_direct(self):
        assert uniform_forward_volume(64, 1) == direct_volume(64)

    def test_non_perfect_power_rejected(self):
        with pytest.raises(TopologyError):
            uniform_forward_volume(48, 2)

    def test_expected_hops(self):
        assert expected_hops_uniform(256, 4) == pytest.approx(3.01, abs=0.01)
        assert expected_hops_uniform(256, 1) == 1.0


class TestBufferBound:
    def test_formula(self):
        assert buffer_bound_words(64, 3) == 189

    def test_simulated_occupancy_respects_bound(self):
        K, s = 32, 2
        p = CommPattern.all_to_all(K, words=s)
        for n in (2, 5):
            plan = build_plan(p, make_vpt(K, n))
            assert plan.forward_occupancy.max() <= buffer_bound_words(K, s)

    def test_all_to_all_occupancy_exact_mid_stage(self):
        # Section 4: exactly K-1 submessages reside at each process after
        # every stage (before final delivery removal); our occupancy
        # excludes delivered ones, so it is < bound but equals
        # (k^d - 1) * k^(n-d) ... spot-check it's tight at stage 0 for
        # the hypercube: half the submessages moved, half stayed.
        K, s = 16, 1
        p = CommPattern.all_to_all(K, words=s)
        plan = build_plan(p, make_vpt(K, 4))
        # after stage 0 every process holds K-2 transit words:
        # (K-1 submessages present, one of which is its own delivery)
        assert set(plan.forward_occupancy[0]) == {K - 2}
