"""Unit tests for the dense-collective (Bruck) comparator."""

import pytest

from repro.core import (
    CommPattern,
    bruck_plan,
    dense_volume_blowup,
    make_vpt,
    sparse_bruck_plan,
)
from repro.errors import PlanError
from repro.network import BGQ, time_plan


def sparse_pattern(K=64, seed=0):
    return CommPattern.random(K, avg_degree=3, seed=seed, words=8)


class TestBruckPlan:
    def test_lg_K_rounds_one_message_each(self):
        p = sparse_pattern()
        plan = bruck_plan(p)
        assert plan.n_stages == 6
        for st in plan.stages:
            assert st.num_messages == p.K
            assert set(st.sent_counts(p.K)) == {1}

    def test_round_partners_are_power_of_two_offsets(self):
        p = sparse_pattern(K=16)
        plan = bruck_plan(p)
        for r, st in enumerate(plan.stages):
            offsets = set((st.receiver - st.sender) % 16)
            assert offsets == {1 << r}

    def test_dense_volume_independent_of_sparsity(self):
        sparse = sparse_pattern(K=32, seed=1)
        denser = CommPattern.random(32, avg_degree=12, seed=1, words=8)
        block = 8
        v1 = bruck_plan(sparse, block_words=block).total_volume
        v2 = bruck_plan(denser, block_words=block).total_volume
        assert v1 == v2  # the whole point: the collective ignores sparsity

    def test_block_words_validation(self):
        with pytest.raises(PlanError):
            bruck_plan(sparse_pattern(), block_words=0)

    def test_message_count_equals_hypercube_stfw(self):
        p = sparse_pattern()
        dense = bruck_plan(p)
        sparse = sparse_bruck_plan(p)
        # the paper's hypercube bound: lg2 K sends per process for both
        assert dense.max_message_count == 6
        assert sparse.max_message_count <= 6


class TestSparseBruck:
    def test_is_hypercube_stfw(self):
        p = sparse_pattern()
        plan = sparse_bruck_plan(p)
        assert plan.vpt == make_vpt(p.K, 6)
        plan.check_stage_bounds()


class TestBlowup:
    def test_sparse_pattern_blows_up(self):
        # ~3 partners/process vs K/2 slots/round: enormous waste
        p = sparse_pattern(K=128, seed=2)
        assert dense_volume_blowup(p) > 10

    def test_dense_pattern_blows_up_less(self):
        sparse = sparse_pattern(K=64, seed=3)
        dense = CommPattern.random(64, avg_degree=30, seed=3, words=8)
        assert dense_volume_blowup(dense) < dense_volume_blowup(sparse)

    def test_empty_pattern(self):
        p = CommPattern.from_arrays(16, [], [], [])
        assert dense_volume_blowup(p) == float("inf")

    def test_time_comparison_favors_stfw(self):
        # the feasibility claim, in microseconds
        p = sparse_pattern(K=128, seed=4)
        t_dense = time_plan(bruck_plan(p), BGQ).total_us
        t_sparse = time_plan(sparse_bruck_plan(p), BGQ).total_us
        assert t_sparse < t_dense
