"""Unit tests for VPT formation (Section 5)."""

import math

import pytest

from repro.core import (
    balanced_dim_sizes,
    enumerate_factorizations,
    ilog2,
    is_power_of_two,
    make_vpt,
    max_message_count,
    optimal_dim_sizes,
    skewed_dim_sizes,
    valid_dimensions,
)
from repro.errors import TopologyError


class TestPowerOfTwoHelpers:
    def test_is_power_of_two(self):
        assert all(is_power_of_two(2**e) for e in range(20))
        assert not any(is_power_of_two(x) for x in (0, -2, 3, 6, 12, 1023))
        assert is_power_of_two(1)

    def test_ilog2(self):
        for e in range(15):
            assert ilog2(2**e) == e

    def test_ilog2_rejects_non_powers(self):
        with pytest.raises(TopologyError):
            ilog2(12)


class TestOptimalDimSizes:
    def test_paper_examples(self):
        assert optimal_dim_sizes(64, 3) == (4, 4, 4)
        assert optimal_dim_sizes(64, 2) == (8, 8)
        assert optimal_dim_sizes(64, 6) == (2,) * 6

    def test_uneven_split_puts_bigger_dims_first(self):
        # lg 128 = 7 = 3*2+1 -> first dim doubled
        assert optimal_dim_sizes(128, 3) == (8, 4, 4)
        assert optimal_dim_sizes(512, 2) == (32, 16)

    def test_product_is_K(self):
        for K in (32, 64, 128, 256, 512, 4096):
            for n in valid_dimensions(K):
                sizes = optimal_dim_sizes(K, n)
                assert math.prod(sizes) == K
                assert len(sizes) == n

    def test_no_two_sizes_differ_more_than_2x(self):
        for K in (64, 256, 1024, 16384):
            for n in valid_dimensions(K):
                sizes = optimal_dim_sizes(K, n)
                assert max(sizes) <= 2 * min(sizes)

    def test_optimality_of_message_count(self):
        # the balanced factorization minimizes sum(k_d - 1) over all
        # ordered power-of-two factorizations
        for K, n in [(64, 2), (64, 3), (256, 3), (512, 4)]:
            best = min(max_message_count(f) for f in enumerate_factorizations(K, n))
            assert max_message_count(optimal_dim_sizes(K, n)) == best

    def test_out_of_range_dimension(self):
        with pytest.raises(TopologyError):
            optimal_dim_sizes(64, 0)
        with pytest.raises(TopologyError):
            optimal_dim_sizes(64, 7)

    def test_non_power_of_two_K_rejected(self):
        with pytest.raises(TopologyError):
            optimal_dim_sizes(48, 2)


class TestBalancedDimSizes:
    def test_power_of_two_delegates(self):
        assert balanced_dim_sizes(256, 4) == optimal_dim_sizes(256, 4)

    def test_non_power_of_two(self):
        sizes = balanced_dim_sizes(48, 2)
        assert math.prod(sizes) == 48
        assert all(k >= 2 for k in sizes)

    def test_non_power_of_two_three_dims(self):
        sizes = balanced_dim_sizes(60, 3)
        assert math.prod(sizes) == 60
        assert len(sizes) == 3

    def test_too_many_dimensions_rejected(self):
        # 6 = 2*3 has only two prime factors
        with pytest.raises(TopologyError):
            balanced_dim_sizes(6, 3)

    def test_K_below_two_rejected(self):
        with pytest.raises(TopologyError):
            balanced_dim_sizes(1, 1)


class TestMakeVpt:
    def test_dimension_one_is_flat(self):
        vpt = make_vpt(64, 1)
        assert vpt.is_flat()
        assert vpt.K == 64

    def test_max_dimension_is_hypercube(self):
        vpt = make_vpt(64, 6)
        assert vpt.is_hypercube()

    def test_valid_dimensions_range(self):
        assert list(valid_dimensions(64)) == [1, 2, 3, 4, 5, 6]
        assert list(valid_dimensions(512)) == list(range(1, 10))


class TestFactorizations:
    def test_enumeration_is_exhaustive_and_valid(self):
        facts = list(enumerate_factorizations(64, 3))
        # compositions of 6 into 3 positive parts: C(5,2) = 10
        assert len(facts) == 10
        for f in facts:
            assert math.prod(f) == 64
            assert all(k >= 2 for k in f)

    def test_single_dim(self):
        assert list(enumerate_factorizations(32, 1)) == [(32,)]

    def test_skewed_sizes(self):
        assert skewed_dim_sizes(256, 3) == (64, 2, 2)
        assert math.prod(skewed_dim_sizes(1024, 4)) == 1024

    def test_skewed_has_worse_or_equal_bound(self):
        for K, n in [(64, 2), (256, 3), (1024, 4)]:
            assert max_message_count(skewed_dim_sizes(K, n)) >= max_message_count(
                optimal_dim_sizes(K, n)
            )


class TestMessageCountBound:
    def test_flat(self):
        assert max_message_count((64,)) == 63

    def test_hypercube_is_logarithmic(self):
        assert max_message_count((2,) * 10) == 10

    def test_paper_k256_bounds(self):
        # Table 2: at K=256 the mmax of STFWn is bounded by sum(k_d - 1)
        expected = {2: 30, 3: 16.0, 4: 12, 8: 8}
        assert max_message_count(optimal_dim_sizes(256, 2)) == 30
        assert max_message_count(optimal_dim_sizes(256, 4)) == 12
        assert max_message_count(optimal_dim_sizes(256, 8)) == 8
        _ = expected
