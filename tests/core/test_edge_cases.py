"""Edge cases across the core: tiny K, degenerate patterns, extremes."""

import numpy as np
import pytest

from repro.core import (
    CommPattern,
    Regularizer,
    VirtualProcessTopology,
    build_direct_plan,
    build_plan,
    make_vpt,
    run_exchange,
)
from repro.errors import PlanError, TopologyError


class TestTinyK:
    def test_K2_single_dimension_only(self):
        from repro.core import valid_dimensions

        assert list(valid_dimensions(2)) == [1]
        vpt = make_vpt(2, 1)
        assert vpt.K == 2

    def test_K2_exchange(self):
        p = CommPattern.from_arrays(2, [0, 1], [1, 0], [5, 3])
        plan = build_direct_plan(p)
        assert plan.max_message_count == 1
        res = run_exchange(p, make_vpt(2, 1))
        assert len(res.delivered[0]) == 1 and len(res.delivered[1]) == 1

    def test_K4_hypercube(self):
        p = CommPattern.all_to_all(4)
        plan = build_plan(p, make_vpt(4, 2))
        assert plan.max_message_count == 2
        res = run_exchange(p, make_vpt(4, 2))
        assert all(len(d) == 3 for d in res.delivered)


class TestDegeneratePatterns:
    def test_single_message_through_deep_vpt(self):
        p = CommPattern.from_arrays(64, [0], [63], [1])
        plan = build_plan(p, make_vpt(64, 6))
        # rank 0 -> 63 differs in all 6 hypercube dimensions
        assert plan.num_physical_messages == 6
        assert plan.total_volume == 6

    def test_neighbors_only_pattern(self):
        # all messages between dimension-0 neighbors: single active stage
        vpt = VirtualProcessTopology((4, 4))
        pairs = [(r, r + 1) for r in range(0, 16, 4)]
        p = CommPattern.from_arrays(
            16, [a for a, _ in pairs], [b for _, b in pairs], [2] * len(pairs)
        )
        plan = build_plan(p, vpt)
        assert plan.stages[0].num_messages == len(pairs)
        assert plan.stages[1].num_messages == 0

    def test_zero_size_messages_allowed(self):
        p = CommPattern.from_arrays(8, [0], [5], [0])
        plan = build_plan(p, make_vpt(8, 3))
        assert plan.total_volume == 0
        assert plan.num_physical_messages >= 1  # still routed

    def test_all_messages_to_one_target(self):
        K = 32
        src = np.array([r for r in range(K) if r != 7], dtype=np.int64)
        dst = np.full(K - 1, 7, dtype=np.int64)
        p = CommPattern.from_arrays(K, src, dst, np.ones(K - 1, dtype=np.int64))
        plan = build_plan(p, make_vpt(K, 5))
        plan.check_stage_bounds()
        # the sink's incast is spread over stages: per-stage recv <= ...
        final_stage = plan.stages[-1]
        assert final_stage.recv_counts(K)[7] <= 1  # hypercube: 1 neighbor/stage


class TestExtremeDimensions:
    def test_max_dimension_for_large_K(self):
        K = 4096
        p = CommPattern.random(K, avg_degree=2, seed=0)
        plan = build_plan(p, make_vpt(K, 12))
        plan.check_stage_bounds()
        assert plan.max_message_count <= 12

    def test_vpt_weights_consistency_large(self):
        vpt = make_vpt(16384, 14)
        assert vpt.weights[-1] == 16384
        assert vpt.is_hypercube()


class TestRegularizerEdges:
    def test_empty_pattern(self):
        p = CommPattern.from_arrays(16, [], [], [])
        reg = Regularizer(p, dimension=2)
        assert reg.stats().mmax == 0
        res = reg.exchange()
        assert all(d == [] for d in res.delivered)

    def test_remap_on_empty_pattern(self):
        p = CommPattern.from_arrays(16, [], [], [])
        reg = Regularizer(p, dimension=2, remap=True)
        assert np.array_equal(reg.position, np.arange(16))


class TestVptEdges:
    def test_two_process_topology(self):
        vpt = VirtualProcessTopology((2,))
        assert vpt.neighbors(0, 0) == [1]
        assert vpt.hamming(0, 1) == 1

    def test_deep_narrow_topology(self):
        vpt = VirtualProcessTopology((2,) * 14)
        assert vpt.K == 16384
        assert vpt.max_message_count_bound() == 14

    def test_single_wide_dimension(self):
        vpt = VirtualProcessTopology((1024,))
        assert len(vpt.neighbors(0, 0)) == 1023

    def test_dim_index_bounds(self):
        vpt = VirtualProcessTopology((4, 4))
        with pytest.raises(TopologyError):
            vpt.neighbors(0, 2)
        with pytest.raises(TopologyError):
            vpt.digit(0, -1)


class TestPatternValidationEdges:
    def test_K_zero_rejected(self):
        with pytest.raises(PlanError):
            CommPattern.from_arrays(0, [], [], [])

    def test_merge_of_empty(self):
        p = CommPattern.from_arrays(4, [], [], [], merge=True)
        assert p.num_messages == 0

    def test_random_zero_degree(self):
        p = CommPattern.random(16, avg_degree=0.0, seed=0)
        assert p.num_messages == 0
