"""The four legacy exchange entry points: deprecated but still working.

``run_stfw_exchange`` / ``run_direct_exchange`` / ``run_stfw_ft_exchange``
/ ``run_direct_ft_exchange`` are shims over :func:`repro.core.run_exchange`.
Each must emit a ``DeprecationWarning`` and return exactly what the
consolidated call returns (the emulator is deterministic, so equality is
exact).  CI runs this module with ``-W error::DeprecationWarning`` to
prove no in-repo caller still goes through a shim.
"""

import pytest

from repro.core import CommPattern, make_vpt, run_exchange
from repro.core.stfw import (
    ExchangeResult,
    FTExchangeResult,
    run_direct_exchange,
    run_direct_ft_exchange,
    run_stfw_exchange,
    run_stfw_ft_exchange,
)
from repro.errors import PlanError
from repro.network import BGQ

FT = dict(timeout_us=50.0, max_retries=2, backoff=2.0)


def _canon(delivered):
    return [[(src, list(p)) for src, p in msgs] for msgs in delivered]


@pytest.fixture
def pattern():
    return CommPattern.random(16, avg_degree=3, seed=5)


@pytest.fixture
def vpt():
    return make_vpt(16, 2)


class TestShimsWarnAndDelegate:
    def test_run_stfw_exchange(self, pattern, vpt):
        new = run_exchange(pattern, vpt, machine=BGQ)
        with pytest.deprecated_call(match="run_stfw_exchange is deprecated"):
            old = run_stfw_exchange(pattern, vpt, machine=BGQ)
        assert old.makespan_us == new.makespan_us
        assert _canon(old.delivered) == _canon(new.delivered)
        assert old.plan is not None

    def test_run_direct_exchange(self, pattern):
        new = run_exchange(pattern, scheme="direct", machine=BGQ)
        with pytest.deprecated_call(match="run_direct_exchange is deprecated"):
            old = run_direct_exchange(pattern, machine=BGQ)
        assert old.makespan_us == new.makespan_us
        assert _canon(old.delivered) == _canon(new.delivered)

    def test_run_stfw_ft_exchange(self, pattern, vpt):
        new = run_exchange(pattern, vpt, on_fault="tolerate", machine=BGQ, **FT)
        with pytest.deprecated_call(match="run_stfw_ft_exchange is deprecated"):
            old = run_stfw_ft_exchange(pattern, vpt, machine=BGQ, **FT)
        assert old.makespan_us == new.makespan_us
        assert _canon(old.delivered) == _canon(new.delivered)
        assert old.reports is not None and len(old.reports) == pattern.K

    def test_run_direct_ft_exchange(self, pattern):
        new = run_exchange(
            pattern, scheme="direct", on_fault="tolerate", machine=BGQ, **FT
        )
        with pytest.deprecated_call(match="run_direct_ft_exchange is deprecated"):
            old = run_direct_ft_exchange(pattern, machine=BGQ, **FT)
        assert old.makespan_us == new.makespan_us
        assert _canon(old.delivered) == _canon(new.delivered)

    def test_ft_result_alias(self):
        # the old FT result type is the merged type, not a copy
        assert FTExchangeResult is ExchangeResult


class TestRunExchangeValidation:
    def test_needs_a_scheme(self, pattern):
        with pytest.raises(PlanError, match="vpt, dims=, or scheme="):
            run_exchange(pattern)

    def test_scheme_string_selects_dims(self, pattern, vpt):
        via_scheme = run_exchange(pattern, scheme="STFW2", machine=BGQ)
        via_vpt = run_exchange(pattern, vpt, machine=BGQ)
        assert via_scheme.makespan_us == via_vpt.makespan_us

    def test_conflicting_dims_rejected(self, pattern, vpt):
        with pytest.raises(PlanError):
            run_exchange(pattern, vpt, dims=3)

    def test_unknown_scheme_rejected(self, pattern):
        with pytest.raises(PlanError, match="STFWx"):
            run_exchange(pattern, scheme="STFWx")

    def test_ft_knob_needs_tolerate(self, pattern, vpt):
        with pytest.raises(PlanError, match="max_retries"):
            run_exchange(pattern, vpt, max_retries=7)

    def test_bad_on_fault_rejected(self, pattern, vpt):
        with pytest.raises(PlanError):
            run_exchange(pattern, vpt, on_fault="explode")
