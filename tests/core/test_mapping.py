"""Unit tests for volume-aware VPT mapping (Section 8 extension)."""

import numpy as np
import pytest

from repro.core import (
    CommPattern,
    apply_mapping,
    average_hops,
    build_plan,
    communication_matrix,
    locality_vpt_mapping,
    make_vpt,
    weighted_hop_volume,
)
from repro.errors import PlanError


def clustered_pattern(K=64, seed=0):
    """Heavy traffic inside scattered pairs — plenty to gain by mapping."""
    rng = np.random.default_rng(seed)
    half = K // 2
    partners = rng.permutation(np.arange(half, K))
    src = np.arange(half, dtype=np.int64)
    dst = partners.astype(np.int64)
    size = np.full(half, 1000, dtype=np.int64)
    # plus light uniform noise
    nsrc = rng.integers(0, K, 200)
    ndst = (nsrc + 1 + rng.integers(0, K - 1, 200)) % K
    p = CommPattern.from_arrays(
        K,
        np.concatenate([src, nsrc]),
        np.concatenate([dst, ndst]),
        np.concatenate([size, np.ones(200, dtype=np.int64)]),
        merge=True,
    )
    return p


class TestCommunicationMatrix:
    def test_symmetric(self):
        p = CommPattern.from_arrays(4, [0, 1], [1, 2], [5, 3])
        M = communication_matrix(p)
        assert (M != M.T).nnz == 0
        assert M[0, 1] == 5 and M[1, 0] == 5

    def test_bidirectional_sums(self):
        p = CommPattern.from_arrays(4, [0, 1], [1, 0], [5, 3])
        M = communication_matrix(p)
        assert M[0, 1] == 8


class TestLocalityMapping:
    def test_is_permutation(self):
        p = clustered_pattern()
        pos = locality_vpt_mapping(p)
        assert sorted(pos) == list(range(p.K))

    def test_empty_pattern_identity(self):
        p = CommPattern.from_arrays(16, [], [], [])
        assert np.array_equal(locality_vpt_mapping(p), np.arange(16))

    def test_reduces_hop_volume(self):
        p = clustered_pattern()
        vpt = make_vpt(64, 6)
        mapped = apply_mapping(p, locality_vpt_mapping(p))
        assert weighted_hop_volume(mapped, vpt) < weighted_hop_volume(p, vpt)

    def test_reduces_plan_volume(self):
        p = clustered_pattern(seed=3)
        vpt = make_vpt(64, 6)
        before = build_plan(p, vpt).total_volume
        after = build_plan(apply_mapping(p, locality_vpt_mapping(p)), vpt).total_volume
        assert after < before

    def test_message_count_bound_unchanged(self):
        p = clustered_pattern(seed=1)
        vpt = make_vpt(64, 3)
        mapped = apply_mapping(p, locality_vpt_mapping(p))
        plan = build_plan(mapped, vpt)
        plan.check_stage_bounds()


class TestApplyMapping:
    def test_relabels_endpoints(self):
        p = CommPattern.from_arrays(4, [0], [3], [7])
        pos = np.array([2, 0, 1, 3])
        q = apply_mapping(p, pos)
        assert q.sendset(2) == {3: 7}

    def test_preserves_totals(self):
        p = clustered_pattern()
        q = apply_mapping(p, locality_vpt_mapping(p))
        assert q.total_words == p.total_words
        assert q.num_messages == p.num_messages

    def test_rejects_non_permutation(self):
        p = CommPattern.from_arrays(4, [0], [1], [1])
        with pytest.raises(PlanError):
            apply_mapping(p, np.array([0, 0, 1, 2]))
        with pytest.raises(PlanError):
            apply_mapping(p, np.array([0, 1]))


class TestHopMetrics:
    def test_plan_volume_equals_hop_volume(self):
        p = clustered_pattern(seed=5)
        vpt = make_vpt(64, 4)
        assert build_plan(p, vpt).total_volume == weighted_hop_volume(p, vpt)

    def test_average_hops_bounds(self):
        p = clustered_pattern()
        vpt = make_vpt(64, 6)
        assert 1.0 <= average_hops(p, vpt) <= vpt.n

    def test_average_hops_empty(self):
        p = CommPattern.from_arrays(16, [], [], [])
        assert average_hops(p, make_vpt(16, 2)) == 0.0

    def test_K_mismatch(self):
        p = CommPattern.all_to_all(16)
        with pytest.raises(PlanError):
            weighted_hop_volume(p, make_vpt(32, 2))


class TestCoalescingAblation:
    def test_uncoalesced_breaks_bound(self):
        p = CommPattern.all_to_all(64)
        vpt = make_vpt(64, 3)
        plan = build_plan(p, vpt, coalesce=False)
        assert plan.max_message_count > vpt.max_message_count_bound()

    def test_volume_unaffected_by_coalescing(self):
        p = CommPattern.random(64, avg_degree=6, seed=1, words=3)
        vpt = make_vpt(64, 3)
        a = build_plan(p, vpt)
        b = build_plan(p, vpt, coalesce=False)
        assert a.total_volume == b.total_volume

    def test_uncoalesced_nsub_all_ones(self):
        p = CommPattern.all_to_all(16)
        plan = build_plan(p, make_vpt(16, 2), coalesce=False)
        for st in plan.stages:
            assert (st.nsub == 1).all()


class TestRefineMapping:
    def test_never_worse_than_start(self):
        from repro.core import refine_vpt_mapping

        p = clustered_pattern(seed=7)
        vpt = make_vpt(64, 6)
        start = locality_vpt_mapping(p)
        refined = refine_vpt_mapping(p, vpt, start, passes=2)
        v_start = weighted_hop_volume(apply_mapping(p, start), vpt)
        v_refined = weighted_hop_volume(apply_mapping(p, refined), vpt)
        assert v_refined <= v_start

    def test_stays_a_permutation(self):
        from repro.core import refine_vpt_mapping

        p = clustered_pattern(seed=8)
        vpt = make_vpt(64, 3)
        refined = refine_vpt_mapping(p, vpt, locality_vpt_mapping(p), passes=3)
        assert sorted(refined) == list(range(64))

    def test_deterministic(self):
        from repro.core import refine_vpt_mapping

        p = clustered_pattern(seed=9)
        vpt = make_vpt(64, 4)
        start = locality_vpt_mapping(p)
        a = refine_vpt_mapping(p, vpt, start, seed=5)
        b = refine_vpt_mapping(p, vpt, start, seed=5)
        assert np.array_equal(a, b)

    def test_empty_pattern_identity(self):
        from repro.core import refine_vpt_mapping

        p = CommPattern.from_arrays(16, [], [], [])
        vpt = make_vpt(16, 2)
        out = refine_vpt_mapping(p, vpt, np.arange(16))
        assert np.array_equal(out, np.arange(16))

    def test_input_not_modified(self):
        from repro.core import refine_vpt_mapping

        p = clustered_pattern(seed=10)
        vpt = make_vpt(64, 6)
        start = locality_vpt_mapping(p)
        snapshot = start.copy()
        refine_vpt_mapping(p, vpt, start, passes=2)
        assert np.array_equal(start, snapshot)

    def test_validation(self):
        from repro.core import refine_vpt_mapping

        p = clustered_pattern()
        with pytest.raises(PlanError):
            refine_vpt_mapping(p, make_vpt(64, 2), np.arange(32))
        with pytest.raises(PlanError):
            refine_vpt_mapping(p, make_vpt(32, 2), np.arange(64))
