"""The paper assumes K is a power of two but notes the method "can
easily be extended"; these tests pin that extension."""

import math

import pytest

from repro.core import (
    CommPattern,
    balanced_dim_sizes,
    build_plan,
    make_vpt,
    run_exchange,
)
from repro.errors import TopologyError
from repro.matrices import generate_matrix
from repro.network import BGQ
from repro.spmv import partition_matrix, run_spmv_schemes


class TestNonPowerOfTwoTopologies:
    @pytest.mark.parametrize("K,n", [(96, 2), (96, 3), (48, 2), (12, 2), (100, 2)])
    def test_balanced_factorization(self, K, n):
        sizes = balanced_dim_sizes(K, n)
        assert math.prod(sizes) == K
        assert all(k >= 2 for k in sizes)

    def test_prime_K_only_flat(self):
        assert balanced_dim_sizes(97, 1) == (97,)
        with pytest.raises(TopologyError):
            balanced_dim_sizes(97, 2)

    @pytest.mark.parametrize("K", [12, 48, 96])
    def test_plan_correct(self, K):
        p = CommPattern.random(K, avg_degree=4, seed=K, words=2)
        plan = build_plan(p, make_vpt(K, 2))
        plan.check_stage_bounds()
        assert plan.total_volume >= p.total_words

    def test_exchange_delivers(self):
        K = 24
        p = CommPattern.random(K, avg_degree=3, seed=1, words=2)
        res = run_exchange(p, make_vpt(K, 3))
        assert sum(len(d) for d in res.delivered) == p.num_messages


class TestNonPowerOfTwoDriver:
    def test_spmv_schemes_at_K96(self):
        A = generate_matrix(960, 9600, 200, 1.5, dense_rows=2, seed=3)
        exp = run_spmv_schemes(A, 96, BGQ, dims=[1, 2, 3])
        assert exp["STFW2"].stats.mmax < exp["BL"].stats.mmax
        bound2 = sum(k - 1 for k in balanced_dim_sizes(96, 2))
        assert exp["STFW2"].stats.mmax <= bound2

    def test_partitioner_at_odd_K(self):
        A = generate_matrix(300, 3000, 60, 0.8, seed=0)
        part = partition_matrix(A, 12)
        assert part.K == 12
        assert part.row_counts().min() >= 1
