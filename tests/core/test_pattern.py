"""Unit tests for CommPattern construction and statistics."""

import numpy as np
import pytest

from repro.core import CommPattern
from repro.errors import PlanError


class TestConstruction:
    def test_from_arrays_basic(self):
        p = CommPattern.from_arrays(4, [0, 0, 1], [1, 2, 3], [10, 20, 30])
        assert p.K == 4
        assert p.num_messages == 3
        assert p.total_words == 60

    def test_self_messages_rejected(self):
        with pytest.raises(PlanError):
            CommPattern.from_arrays(4, [0], [0], [1])

    def test_drop_self(self):
        p = CommPattern.from_arrays(4, [0, 1], [0, 2], [1, 5], drop_self=True)
        assert p.num_messages == 1
        assert p.sendset(1) == {2: 5}

    def test_duplicates_rejected(self):
        with pytest.raises(PlanError):
            CommPattern.from_arrays(4, [0, 0], [1, 1], [1, 2])

    def test_merge_duplicates(self):
        p = CommPattern.from_arrays(4, [0, 0, 2], [1, 1, 3], [1, 2, 7], merge=True)
        assert p.num_messages == 2
        assert p.sendset(0) == {1: 3}
        assert p.sendset(2) == {3: 7}

    def test_out_of_range_ranks(self):
        with pytest.raises(PlanError):
            CommPattern.from_arrays(4, [0], [4], [1])
        with pytest.raises(PlanError):
            CommPattern.from_arrays(4, [-1], [2], [1])

    def test_negative_sizes_rejected(self):
        with pytest.raises(PlanError):
            CommPattern.from_arrays(4, [0], [1], [-1])

    def test_mismatched_lengths(self):
        with pytest.raises(PlanError):
            CommPattern.from_arrays(4, [0, 1], [1], [1, 1])

    def test_empty_pattern(self):
        p = CommPattern.from_arrays(8, [], [], [])
        assert p.num_messages == 0
        assert p.stats().mmax == 0

    def test_from_sendsets(self):
        p = CommPattern.from_sendsets([{1: 4, 2: 8}, {0: 2}, {}])
        assert p.K == 3
        assert p.sendset(0) == {1: 4, 2: 8}
        assert p.sendset(1) == {0: 2}
        assert p.sendset(2) == {}

    def test_arrays_are_readonly(self):
        p = CommPattern.from_arrays(4, [0], [1], [1])
        with pytest.raises(ValueError):
            p.src[0] = 3


class TestAllToAll:
    def test_counts(self):
        p = CommPattern.all_to_all(8, words=3)
        assert p.num_messages == 8 * 7
        assert p.total_words == 8 * 7 * 3
        assert np.array_equal(p.sent_counts(), np.full(8, 7))
        assert np.array_equal(p.recv_counts(), np.full(8, 7))

    def test_stats(self):
        s = CommPattern.all_to_all(4, words=2).stats()
        assert s.mmax == 3
        assert s.mavg == 3.0
        assert s.vavg == 6.0


class TestRandom:
    def test_reproducible(self):
        a = CommPattern.random(32, avg_degree=4, seed=42)
        b = CommPattern.random(32, avg_degree=4, seed=42)
        assert np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)

    def test_no_self_messages(self):
        p = CommPattern.random(64, avg_degree=8, seed=1)
        assert not (p.src == p.dst).any()

    def test_hot_processes_have_high_degree(self):
        p = CommPattern.random(64, avg_degree=2, hot_processes=2, seed=5)
        counts = p.sent_counts()
        assert counts[0] == 63 and counts[1] == 63
        assert counts[2:].max() < 63

    def test_hot_degree_override(self):
        p = CommPattern.random(64, avg_degree=2, hot_processes=1, hot_degree=10, seed=5)
        assert p.sent_counts()[0] == 10

    def test_irregularity_shows_in_stats(self):
        # the Figure 1 situation: mmax far above mavg
        p = CommPattern.random(256, avg_degree=6, hot_processes=4, seed=9)
        s = p.stats()
        assert s.mmax > 10 * s.mavg


class TestQueries:
    def test_sent_recv_words(self):
        p = CommPattern.from_arrays(3, [0, 1], [1, 2], [10, 20])
        assert list(p.sent_words()) == [10, 20, 0]
        assert list(p.recv_words()) == [0, 10, 20]

    def test_sendset_bad_rank(self):
        p = CommPattern.all_to_all(4)
        with pytest.raises(PlanError):
            p.sendset(4)

    def test_scaled(self):
        p = CommPattern.from_arrays(3, [0], [1], [10])
        assert p.scaled(2.5).total_words == 25
        assert p.scaled(0).total_words == 0

    def test_scaled_negative_rejected(self):
        p = CommPattern.from_arrays(3, [0], [1], [10])
        with pytest.raises(PlanError):
            p.scaled(-1)

    def test_len(self):
        assert len(CommPattern.all_to_all(4)) == 12
