"""CommPattern.sendset — the lazy CSR index must not change results."""

import numpy as np

from repro.core import CommPattern


def naive_sendset(pattern, rank):
    out = {}
    for s, d, w in zip(pattern.src, pattern.dst, pattern.size):
        if int(s) == rank:
            out[int(d)] = int(w)
    return out


class TestSendsetCSR:
    def test_matches_naive_every_rank(self):
        p = CommPattern.random(48, avg_degree=5, hot_processes=3, seed=21, words=4)
        for rank in range(p.K):
            assert p.sendset(rank) == naive_sendset(p, rank)

    def test_repeated_calls_stable(self):
        p = CommPattern.random(16, avg_degree=4, seed=2)
        first = [p.sendset(r) for r in range(p.K)]
        second = [p.sendset(r) for r in range(p.K)]
        assert first == second

    def test_empty_rank(self):
        # a rank sending nothing must still answer (with an empty dict)
        p = CommPattern(4, src=np.array([0]), dst=np.array([1]), size=np.array([3]))
        assert p.sendset(2) == {}
        assert p.sendset(0) == {1: 3}

    def test_scaled_pattern_has_independent_index(self):
        p = CommPattern.random(16, avg_degree=4, seed=8, words=2)
        before = {r: p.sendset(r) for r in range(p.K)}  # build the CSR index
        q = p.scaled(3.0)
        for rank in range(q.K):
            assert q.sendset(rank) == naive_sendset(q, rank)
        assert {r: p.sendset(r) for r in range(p.K)} == before
