"""Unit tests for PatternDelta and CommPattern mutation safety."""

import numpy as np
import pytest

from repro.core import CommPattern, PatternDelta
from repro.errors import PlanError


def square(K=4):
    """A small dense-ish pattern: every rank sends to rank+1 and rank+2."""
    src = []
    dst = []
    for r in range(K):
        src += [r, r]
        dst += [(r + 1) % K, (r + 2) % K]
    size = [10 * (i + 1) for i in range(len(src))]
    return CommPattern.from_arrays(K, src, dst, size)


class TestDeltaConstruction:
    def test_empty_delta(self):
        d = PatternDelta(4)
        assert d.K == 4
        assert d.num_changes == 0
        assert len(d) == 0

    def test_counts(self):
        d = PatternDelta(
            8,
            remove_src=[0],
            remove_dst=[1],
            add_src=[2, 3],
            add_dst=[4, 5],
            add_size=[7, 8],
            reweight_src=[1],
            reweight_dst=[2],
            reweight_size=[99],
        )
        assert d.num_changes == 4

    def test_rejects_bad_K(self):
        with pytest.raises(PlanError):
            PatternDelta(0)

    def test_rejects_rank_out_of_range(self):
        with pytest.raises(PlanError):
            PatternDelta(4, add_src=[0], add_dst=[4], add_size=[1])

    def test_rejects_self_edges(self):
        with pytest.raises(PlanError):
            PatternDelta(4, remove_src=[2], remove_dst=[2])

    def test_rejects_duplicate_pairs(self):
        with pytest.raises(PlanError):
            PatternDelta(4, add_src=[0, 0], add_dst=[1, 1], add_size=[1, 2])

    def test_rejects_misaligned_sizes(self):
        with pytest.raises(PlanError):
            PatternDelta(4, add_src=[0], add_dst=[1], add_size=[1, 2])

    def test_rejects_negative_sizes(self):
        with pytest.raises(PlanError):
            PatternDelta(4, add_src=[0], add_dst=[1], add_size=[-1])

    def test_views_are_read_only(self):
        d = PatternDelta(4, add_src=[0], add_dst=[1], add_size=[5])
        with pytest.raises(ValueError):
            d.add_src[0] = 3


class TestApplyDelta:
    def test_remove_add_reweight(self):
        p = square()
        d = PatternDelta(
            4,
            remove_src=[0],
            remove_dst=[1],
            reweight_src=[1],
            reweight_dst=[2],
            reweight_size=[999],
            add_src=[3],
            add_dst=[2],
            add_size=[55],
        )
        q = p.apply_delta(d)
        assert q.num_messages == p.num_messages  # one out, one in
        assert q.sendset(0) == {2: 20}
        assert q.sendset(1) == {2: 999, 3: 40}
        assert q.sendset(3)[2] == 55
        # original untouched
        assert p.sendset(0) == {1: 10, 2: 20}

    def test_survivor_order_is_canonical(self):
        """Survivors keep original row order; additions append in delta order."""
        p = square()
        d = PatternDelta(4, remove_src=[1], remove_dst=[2],
                         add_src=[2, 1], add_dst=[1, 0], add_size=[5, 6])
        q = p.apply_delta(d)
        keep = ~((p.src == 1) & (p.dst == 2))
        np.testing.assert_array_equal(q.src[:-2], p.src[keep])
        np.testing.assert_array_equal(q.dst[:-2], p.dst[keep])
        np.testing.assert_array_equal(q.src[-2:], [2, 1])
        np.testing.assert_array_equal(q.dst[-2:], [1, 0])

    def test_rewire_removed_pair_is_allowed(self):
        p = square()
        d = PatternDelta(4, remove_src=[0], remove_dst=[1],
                         add_src=[0], add_dst=[1], add_size=[77])
        q = p.apply_delta(d)
        assert q.sendset(0)[1] == 77

    def test_add_existing_edge_rejected(self):
        p = square()
        d = PatternDelta(4, add_src=[0], add_dst=[1], add_size=[1])
        with pytest.raises(PlanError):
            p.apply_delta(d)

    def test_reweight_removed_edge_rejected(self):
        p = square()
        d = PatternDelta(4, remove_src=[0], remove_dst=[1],
                         reweight_src=[0], reweight_dst=[1], reweight_size=[9])
        with pytest.raises(PlanError):
            p.apply_delta(d)

    def test_remove_missing_edge_rejected(self):
        p = square()
        with pytest.raises(PlanError):
            p.apply_delta(PatternDelta(4, remove_src=[0], remove_dst=[3]))

    def test_K_mismatch_rejected(self):
        p = square()
        with pytest.raises(PlanError):
            p.apply_delta(PatternDelta(8))

    def test_seeded_edge_index_matches_fresh_sort(self):
        """apply_delta splices the sorted edge index instead of re-sorting;
        the spliced index must equal a from-scratch argsort."""
        p = CommPattern.random(32, avg_degree=5, seed=3)
        for epoch in range(4):
            d = PatternDelta.random(p, 0.3, seed=epoch)
            p = p.apply_delta(d)
            keys, order = p._edges()
            fresh = p.src * np.int64(p.K) + p.dst
            forder = np.argsort(fresh, kind="stable")
            np.testing.assert_array_equal(keys, fresh[forder])
            np.testing.assert_array_equal(order, forder)


class TestMutationInvalidation:
    """Regression: the lazy CSR sendset index must never serve a stale view."""

    def test_sendset_after_inplace_mutation(self):
        p = square()
        # populate the lazy CSR cache first
        assert p.sendset(0) == {1: 10, 2: 20}
        d = PatternDelta(4, remove_src=[0], remove_dst=[1],
                         add_src=[0], add_dst=[3], add_size=[42])
        p.apply_delta(d, inplace=True)
        # the cached CSR must have been invalidated by the mutation
        assert p.sendset(0) == {2: 20, 3: 42}

    def test_sendset_weight_after_inplace_reweight(self):
        p = square()
        assert p.sendset(1) == {2: 30, 3: 40}
        d = PatternDelta(4, reweight_src=[1], reweight_dst=[2], reweight_size=[7])
        p.apply_delta(d, inplace=True)
        assert p.sendset(1) == {2: 7, 3: 40}

    def test_edge_rows_after_inplace_mutation(self):
        p = square()
        p.edge_rows([0], [1])  # populate the sorted edge index
        d = PatternDelta(4, remove_src=[0], remove_dst=[1])
        p.apply_delta(d, inplace=True)
        with pytest.raises(PlanError):
            p.edge_rows([0], [1])

    def test_non_inplace_leaves_cache_valid(self):
        p = square()
        before = p.sendset(2)
        d = PatternDelta(4, remove_src=[2], remove_dst=[3])
        q = p.apply_delta(d)
        assert p.sendset(2) == before
        assert 3 not in q.sendset(2)


class TestRandomDelta:
    def test_deterministic_in_seed(self):
        p = CommPattern.random(64, avg_degree=6, seed=0)
        a = PatternDelta.random(p, 0.2, seed=5)
        b = PatternDelta.random(p, 0.2, seed=5)
        np.testing.assert_array_equal(a.remove_src, b.remove_src)
        np.testing.assert_array_equal(a.add_src, b.add_src)
        np.testing.assert_array_equal(a.add_size, b.add_size)
        np.testing.assert_array_equal(a.reweight_size, b.reweight_size)

    def test_touches_about_rate(self):
        p = CommPattern.random(64, avg_degree=6, seed=0)
        d = PatternDelta.random(p, 0.25, seed=1)
        assert 0 < d.num_changes <= int(0.25 * p.num_messages) + 1

    def test_applies_cleanly_over_a_stream(self):
        p = CommPattern.random(32, avg_degree=4, seed=2)
        for epoch in range(6):
            d = PatternDelta.random(p, 0.5, seed=epoch)
            p = p.apply_delta(d)
        assert p.num_messages > 0

    def test_rejects_bad_rate(self):
        p = CommPattern.random(8, avg_degree=2, seed=0)
        with pytest.raises(PlanError):
            PatternDelta.random(p, 0.0, seed=0)
        with pytest.raises(PlanError):
            PatternDelta.random(p, 1.5, seed=0)
