"""Unit tests for plan-level STFW simulation (Algorithm 1 semantics)."""

import numpy as np
import pytest

from repro.core import (
    CommPattern,
    VirtualProcessTopology,
    build_direct_plan,
    build_plan,
    make_vpt,
    plans_for_dimensions,
)
from repro.errors import PlanError


def brute_force_stage_messages(pattern, vpt):
    """Reference: route each submessage independently, coalesce by hand."""
    from repro.core import route

    per_stage: list[dict[tuple[int, int], list[int]]] = [{} for _ in range(vpt.n)]
    for s, d, w in zip(pattern.src, pattern.dst, pattern.size):
        for hop in route(vpt, int(s), int(d)):
            per_stage[hop.stage].setdefault((hop.sender, hop.receiver), []).append(int(w))
    return per_stage


class TestBuildPlan:
    def test_mismatched_K(self):
        p = CommPattern.all_to_all(8)
        with pytest.raises(PlanError):
            build_plan(p, VirtualProcessTopology((4, 4)))

    def test_negative_header(self):
        p = CommPattern.all_to_all(4)
        with pytest.raises(PlanError):
            build_plan(p, VirtualProcessTopology((2, 2)), header_words=-1)

    def test_direct_plan_equals_pattern(self):
        p = CommPattern.random(16, avg_degree=4, seed=2)
        plan = build_direct_plan(p)
        assert plan.n_stages == 1
        assert plan.num_physical_messages == p.num_messages
        assert plan.max_message_count == p.stats().mmax
        assert plan.total_volume == p.total_words

    def test_matches_brute_force_routing(self):
        p = CommPattern.random(64, avg_degree=6, hot_processes=2, seed=4, words=3)
        for n in (2, 3, 6):
            vpt = make_vpt(64, n)
            plan = build_plan(p, vpt)
            ref = brute_force_stage_messages(p, vpt)
            for d, st in enumerate(plan.stages):
                got = {
                    (int(s), int(r)): (int(ns), int(w))
                    for s, r, ns, w in zip(
                        st.sender, st.receiver, st.nsub, st.payload_words
                    )
                }
                want = {
                    pair: (len(ws), sum(ws)) for pair, ws in ref[d].items()
                }
                assert got == want, f"stage {d} mismatch for n={n}"

    def test_stage_bounds_hold(self):
        p = CommPattern.all_to_all(64, words=2)
        for n in (1, 2, 3, 6):
            plan = build_plan(p, make_vpt(64, n))
            plan.check_stage_bounds()  # must not raise

    def test_all_to_all_hits_stage_bounds_exactly(self):
        K = 64
        p = CommPattern.all_to_all(K)
        for n in (2, 3, 6):
            vpt = make_vpt(K, n)
            plan = build_plan(p, vpt)
            assert plan.max_message_count == vpt.max_message_count_bound()
            # every process sends exactly k_d - 1 messages in stage d
            for d, st in enumerate(plan.stages):
                counts = st.sent_counts(K)
                assert counts.min() == counts.max() == vpt.dim_sizes[d] - 1

    def test_message_count_reduction_monotone_for_all_to_all(self):
        K = 256
        p = CommPattern.all_to_all(K)
        plans = plans_for_dimensions(p, range(1, 9))
        mmaxes = [plans[n].max_message_count for n in range(1, 9)]
        assert mmaxes == sorted(mmaxes, reverse=True)
        assert mmaxes[0] == 255 and mmaxes[-1] == 8

    def test_volume_grows_with_dimension(self):
        p = CommPattern.all_to_all(64, words=5)
        vols = [build_plan(p, make_vpt(64, n)).total_volume for n in (1, 2, 3, 6)]
        assert vols == sorted(vols)

    def test_header_words_added_per_submessage(self):
        p = CommPattern.all_to_all(16, words=4)
        plain = build_plan(p, make_vpt(16, 2))
        framed = build_plan(p, make_vpt(16, 2), header_words=2)
        total_sub = sum(int(st.nsub.sum()) for st in plain.stages)
        assert framed.total_volume == plain.total_volume + 2 * total_sub

    def test_empty_pattern(self):
        p = CommPattern.from_arrays(16, [], [], [])
        plan = build_plan(p, make_vpt(16, 2))
        assert plan.max_message_count == 0
        assert plan.total_volume == 0
        assert plan.num_physical_messages == 0

    def test_single_message_hamming_route(self):
        vpt = VirtualProcessTopology((4, 4))
        src, dst = vpt.rank_of((1, 1)), vpt.rank_of((3, 2))
        p = CommPattern.from_arrays(16, [src], [dst], [7])
        plan = build_plan(p, vpt)
        # Hamming distance 2: one physical message per stage
        assert [st.num_messages for st in plan.stages] == [1, 1]
        assert plan.total_volume == 14

    def test_neighbor_message_single_stage(self):
        vpt = VirtualProcessTopology((4, 4))
        src, dst = vpt.rank_of((1, 1)), vpt.rank_of((1, 3))
        p = CommPattern.from_arrays(16, [src], [dst], [7])
        plan = build_plan(p, vpt)
        assert [st.num_messages for st in plan.stages] == [0, 1]
        assert plan.total_volume == 7


class TestCoalescing:
    def test_same_nexthop_submessages_share_one_message(self):
        # paper Section 3: messages from P_i to multiple destinations
        # whose coords first differ in dim 0 at the same digit coalesce
        vpt = VirtualProcessTopology((4, 4))
        src = vpt.rank_of((0, 0))
        d1 = vpt.rank_of((2, 1))
        d2 = vpt.rank_of((2, 3))
        p = CommPattern.from_arrays(16, [src, src], [d1, d2], [5, 9])
        plan = build_plan(p, vpt)
        st0 = plan.stages[0]
        assert st0.num_messages == 1
        assert int(st0.nsub[0]) == 2
        assert int(st0.payload_words[0]) == 14

    def test_distinct_destination_digits_do_not_coalesce(self):
        vpt = VirtualProcessTopology((4, 4))
        src = vpt.rank_of((0, 0))
        d1 = vpt.rank_of((1, 1))
        d2 = vpt.rank_of((2, 1))
        p = CommPattern.from_arrays(16, [src, src], [d1, d2], [1, 1])
        plan = build_plan(p, vpt)
        assert plan.stages[0].num_messages == 2

    def test_convergent_sources_coalesce_at_intermediate(self):
        # two submessages from distinct sources to the same destination
        # that meet at an intermediate process travel together afterwards
        vpt = VirtualProcessTopology((4, 4))
        s1 = vpt.rank_of((0, 0))
        s2 = vpt.rank_of((1, 0))
        dst = vpt.rank_of((3, 3))
        p = CommPattern.from_arrays(16, [s1, s2], [dst, dst], [2, 3])
        plan = build_plan(p, vpt)
        st1 = plan.stages[1]
        assert st1.num_messages == 1
        assert int(st1.nsub[0]) == 2
        assert int(st1.payload_words[0]) == 5


class TestPlanMetrics:
    def test_avg_volume_definition(self):
        p = CommPattern.all_to_all(16, words=2)
        plan = build_plan(p, make_vpt(16, 2))
        assert plan.avg_volume == pytest.approx(plan.total_volume / 16)

    def test_sent_equals_recv_totals(self):
        p = CommPattern.random(32, avg_degree=5, seed=8)
        plan = build_plan(p, make_vpt(32, 3))
        assert plan.sent_counts().sum() == plan.recv_counts().sum()
        assert plan.sent_words().sum() == plan.recv_words().sum()

    def test_stage_summary_shape(self):
        p = CommPattern.all_to_all(16)
        plan = build_plan(p, make_vpt(16, 4))
        rows = plan.stage_summary()
        assert len(rows) == 4
        for row in rows:
            assert row["max_sent"] <= row["bound"]

    def test_occupancy_bound_all_to_all(self):
        # Section 4: after any stage a process holds <= s(K-1) words
        K, s = 64, 3
        p = CommPattern.all_to_all(K, words=s)
        for n in (2, 3, 6):
            plan = build_plan(p, make_vpt(K, n))
            assert plan.forward_occupancy.max() <= s * (K - 1)

    def test_buffer_words_direct(self):
        p = CommPattern.from_arrays(4, [0, 1], [1, 0], [10, 6])
        plan = build_direct_plan(p)
        bw = plan.buffer_words()
        assert bw[0] == 16 and bw[1] == 16 and bw[2] == 0

    def test_buffer_words_stfw_at_least_direct(self):
        p = CommPattern.random(64, avg_degree=6, hot_processes=1, seed=3, words=4)
        direct = build_direct_plan(p).buffer_words()
        stfw = build_plan(p, make_vpt(64, 3)).buffer_words()
        assert (stfw >= direct).all()

    def test_check_stage_bounds_raises_on_violation(self):
        # construct an artificially broken plan by lying about the VPT
        p = CommPattern.all_to_all(8)
        plan = build_plan(p, make_vpt(8, 1))
        plan.vpt = VirtualProcessTopology((2, 2, 2))  # wrong bound source
        with pytest.raises(PlanError):
            plan.check_stage_bounds()
