"""PlanBuilder — memoized plan construction must match ``build_plan``.

The builder caches holder arrays, stage schedules and occupancy rows
across the plans of one pattern; every cached reuse must be
indistinguishable (down to array contents) from a from-scratch build.
"""

import numpy as np
import pytest

from repro.core import CommPattern, build_plan, make_vpt, plans_for_dimensions
from repro.core.dimensioning import VirtualProcessTopology
from repro.core.plan import PlanBuilder
from repro.errors import PlanError

_STAGE_FIELDS = ("sender", "receiver", "nsub", "payload_words", "total_words")


def assert_plans_equal(a, b):
    assert a.K == b.K
    assert a.header_words == b.header_words
    assert a.vpt.dim_sizes == b.vpt.dim_sizes
    assert len(a.stages) == len(b.stages)
    for sa, sb in zip(a.stages, b.stages):
        assert sa.stage == sb.stage
        for field in _STAGE_FIELDS:
            np.testing.assert_array_equal(getattr(sa, field), getattr(sb, field))
    np.testing.assert_array_equal(a.forward_occupancy, b.forward_occupancy)


class TestPlanBuilder:
    def test_matches_build_plan_every_dimension(self):
        p = CommPattern.random(64, avg_degree=6, hot_processes=2, seed=11, words=3)
        builder = PlanBuilder(p)
        for n in (1, 2, 3, 6):
            vpt = make_vpt(64, n)
            assert_plans_equal(
                builder.plan(vpt, header_words=2),
                build_plan(p, vpt, header_words=2),
            )

    def test_reuse_does_not_leak_between_header_words(self):
        p = CommPattern.random(32, avg_degree=4, seed=3, words=2)
        vpt = make_vpt(32, 2)
        builder = PlanBuilder(p)
        with_header = builder.plan(vpt, header_words=4)
        without = builder.plan(vpt)
        assert_plans_equal(without, build_plan(p, vpt))
        assert_plans_equal(with_header, build_plan(p, vpt, header_words=4))

    def test_second_call_reuses_memoized_stage_arrays(self):
        p = CommPattern.random(16, avg_degree=3, seed=5)
        vpt = make_vpt(16, 2)
        builder = PlanBuilder(p)
        first = builder.plan(vpt)
        second = builder.plan(vpt)
        for sa, sb in zip(first.stages, second.stages):
            assert sa.sender is sb.sender
            assert sa.payload_words is sb.payload_words

    def test_coalesce_false(self):
        p = CommPattern.random(16, avg_degree=4, seed=7, words=2)
        vpt = make_vpt(16, 2)
        builder = PlanBuilder(p)
        assert_plans_equal(
            builder.plan(vpt, coalesce=False), build_plan(p, vpt, coalesce=False)
        )

    def test_mismatched_K_raises(self):
        p = CommPattern.all_to_all(8)
        with pytest.raises(PlanError):
            PlanBuilder(p).plan(VirtualProcessTopology((4, 4)))

    def test_negative_header_raises(self):
        p = CommPattern.all_to_all(4)
        with pytest.raises(PlanError):
            PlanBuilder(p).plan(VirtualProcessTopology((2, 2)), header_words=-1)


class TestPlansForDimensions:
    def test_identical_to_independent_builds(self):
        p = CommPattern.random(64, avg_degree=5, seed=9, words=2)
        dims = (1, 2, 3, 6)
        got = plans_for_dimensions(p, dims, header_words=1)
        assert sorted(got) == sorted(dims)
        for n in dims:
            assert_plans_equal(
                got[n], build_plan(p, make_vpt(64, n), header_words=1)
            )

    def test_shared_intermediates_across_dimensions(self):
        # dims 2 and 3 of K=64 share stage weights with dim 6; the
        # memoized builder must hand all of them identical results
        p = CommPattern.random(64, avg_degree=4, seed=13)
        got = plans_for_dimensions(p, (2, 3, 6))
        for n, plan in got.items():
            assert_plans_equal(plan, build_plan(p, make_vpt(64, n)))
