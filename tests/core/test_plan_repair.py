"""Property sweep: incremental plan repair vs from-scratch rebuild.

``repair_plan`` (and the memoized ``PlanBuilder.apply_delta``) must be
**byte-identical** to applying the delta and rebuilding: same values and
same dtypes on every schedule array of every stage, the occupancy
matrix, and the pattern arrays.  The sweep drives chained random delta
streams over the two reference topologies T_2(4,4) and T_3(2,3,4) and
additionally pins the executed exchange: the message trace of a run on
the repair-maintained pattern must equal the trace of a run on the
rebuilt pattern (golden traces).
"""

import numpy as np
import pytest

from repro.core import CommPattern, PatternDelta, PlanBuilder, build_plan, repair_plan
from repro.core.dimensioning import VirtualProcessTopology
from repro.core.stfw import run_exchange
from repro.errors import PlanError
from repro.network import BGQ


def assert_plans_byte_identical(p, q):
    """Values AND dtypes on every array; route_key is derived metadata."""
    assert p.vpt.dim_sizes == q.vpt.dim_sizes
    assert p.header_words == q.header_words
    assert len(p.stages) == len(q.stages)

    def same(a, b, what):
        assert a.dtype == b.dtype, f"{what}: dtype {a.dtype} != {b.dtype}"
        np.testing.assert_array_equal(a, b, err_msg=what)

    same(p.forward_occupancy, q.forward_occupancy, "forward_occupancy")
    for d, (a, b) in enumerate(zip(p.stages, q.stages)):
        for name in ("sender", "receiver", "nsub", "payload_words", "total_words"):
            same(getattr(a, name), getattr(b, name), f"stage {d} {name}")
    same(p.pattern.src, q.pattern.src, "pattern.src")
    same(p.pattern.dst, q.pattern.dst, "pattern.dst")
    same(p.pattern.size, q.pattern.size, "pattern.size")


TOPOLOGIES = ((4, 4), (2, 3, 4))
RATES = (0.05, 0.25, 0.5)


class TestRepairEqualsRebuild:
    @pytest.mark.parametrize("dim_sizes", TOPOLOGIES)
    @pytest.mark.parametrize("header", (0, 2))
    @pytest.mark.parametrize("seed", range(5))
    def test_chained_drift_stream(self, dim_sizes, header, seed):
        K = int(np.prod(dim_sizes))
        vpt = VirtualProcessTopology(dim_sizes)
        pattern = CommPattern.random(K, avg_degree=3, seed=seed)
        plan = build_plan(pattern, vpt, header_words=header)
        for epoch, rate in enumerate(RATES):
            delta = PatternDelta.random(plan.pattern, rate, seed=100 * seed + epoch)
            repaired = repair_plan(plan, delta)
            rebuilt = build_plan(
                plan.pattern.apply_delta(delta), vpt, header_words=header
            )
            assert_plans_byte_identical(repaired, rebuilt)
            plan = repaired

    @pytest.mark.parametrize("dim_sizes", TOPOLOGIES)
    def test_builder_apply_delta_matches_rebuild(self, dim_sizes):
        K = int(np.prod(dim_sizes))
        vpt = VirtualProcessTopology(dim_sizes)
        pattern = CommPattern.random(K, avg_degree=3, seed=7)
        builder = PlanBuilder(pattern)
        builder.plan(vpt, header_words=2)  # populate the memoized stage arrays
        for epoch in range(3):
            delta = PatternDelta.random(builder.pattern, 0.3, seed=epoch)
            reference = build_plan(
                builder.pattern.apply_delta(delta), vpt, header_words=2
            )
            builder.apply_delta(delta)
            assert_plans_byte_identical(builder.plan(vpt, header_words=2), reference)

    def test_empty_delta_is_identity(self):
        vpt = VirtualProcessTopology((4, 4))
        pattern = CommPattern.random(16, avg_degree=3, seed=0)
        plan = build_plan(pattern, vpt)
        repaired = repair_plan(plan, PatternDelta(16))
        assert_plans_byte_identical(repaired, plan)

    def test_repair_preserves_header_words(self):
        vpt = VirtualProcessTopology((2, 3, 4))
        pattern = CommPattern.random(24, avg_degree=3, seed=1)
        plan = build_plan(pattern, vpt, header_words=3)
        delta = PatternDelta.random(pattern, 0.2, seed=9)
        repaired = repair_plan(plan, delta)
        assert repaired.header_words == 3
        for a, b in zip(repaired.stages, plan.stages):
            assert a.total_words.dtype == b.total_words.dtype


class TestGoldenTraces:
    @pytest.mark.parametrize("dim_sizes", TOPOLOGIES)
    def test_exchange_trace_identical_after_repair(self, dim_sizes):
        """The executed exchange, not just the plan, must agree."""
        K = int(np.prod(dim_sizes))
        vpt = VirtualProcessTopology(dim_sizes)
        pattern = CommPattern.random(K, avg_degree=3, seed=4)
        plan = build_plan(pattern, vpt)
        for epoch in range(2):
            delta = PatternDelta.random(plan.pattern, 0.25, seed=50 + epoch)
            repaired = repair_plan(plan, delta)
            rebuilt_pattern = plan.pattern.apply_delta(delta)
            rep = run_exchange(repaired.pattern, vpt, machine=BGQ, trace=True)
            ref = run_exchange(rebuilt_pattern, vpt, machine=BGQ, trace=True)
            assert rep.run.trace == ref.run.trace
            assert rep.run.makespan_us == ref.run.makespan_us
            plan = repaired


class TestRepairErrors:
    def test_repair_requires_coalesced_plan(self):
        """A plan whose stage repeats a route cannot be repaired."""
        vpt = VirtualProcessTopology((4, 4))
        pattern = CommPattern.random(16, avg_degree=3, seed=0)
        plan = build_plan(pattern, vpt)
        st = plan.stages[0]
        if st.sender.size < 1:
            pytest.skip("empty stage")
        # forge a non-coalesced stage: duplicate the first route
        from dataclasses import replace

        forged = replace(
            plan,
            stages=[
                replace(
                    st,
                    sender=np.repeat(st.sender[:1], 2),
                    receiver=np.repeat(st.receiver[:1], 2),
                    nsub=np.repeat(st.nsub[:1], 2),
                    payload_words=np.repeat(st.payload_words[:1], 2),
                    total_words=np.repeat(st.total_words[:1], 2),
                    route_key=None,
                ),
                *plan.stages[1:],
            ],
        )
        with pytest.raises(PlanError):
            repair_plan(forged, PatternDelta(16))

    def test_repair_rejects_K_mismatch(self):
        vpt = VirtualProcessTopology((4, 4))
        pattern = CommPattern.random(16, avg_degree=3, seed=0)
        plan = build_plan(pattern, vpt)
        with pytest.raises(PlanError):
            repair_plan(plan, PatternDelta(8))
