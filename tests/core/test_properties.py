"""Property-based tests (hypothesis) for the core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CommPattern,
    VirtualProcessTopology,
    apply_mapping,
    build_plan,
    holder_after_stage,
    make_vpt,
    route,
    weighted_hop_volume,
)


@st.composite
def vpts(draw, max_K=256):
    """Random topologies: 1-5 dimensions of sizes 2-8, K <= max_K."""
    n = draw(st.integers(1, 5))
    sizes = []
    K = 1
    for _ in range(n):
        k = draw(st.integers(2, 8))
        if K * k > max_K:
            break
        sizes.append(k)
        K *= k
    if not sizes:
        sizes = [2]
    return VirtualProcessTopology(tuple(sizes))


@st.composite
def vpt_and_pattern(draw):
    """A topology plus a random valid pattern on it."""
    vpt = draw(vpts(max_K=128))
    K = vpt.K
    m = draw(st.integers(0, 60))
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, K - 1), st.integers(0, K - 1)),
            min_size=m,
            max_size=m,
        )
    )
    src, dst, size = [], [], []
    seen = set()
    for s, d in pairs:
        if s != d and (s, d) not in seen:
            seen.add((s, d))
            src.append(s)
            dst.append(d)
            size.append(draw(st.integers(1, 16)))
    return vpt, CommPattern.from_arrays(K, src, dst, size)


class TestRoutingProperties:
    @given(vpts(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_route_reaches_destination_within_n_hops(self, vpt, data):
        src = data.draw(st.integers(0, vpt.K - 1))
        dst = data.draw(st.integers(0, vpt.K - 1))
        hops = route(vpt, src, dst)
        assert len(hops) == vpt.hamming(src, dst) <= vpt.n
        if hops:
            assert hops[0].sender == src
            assert hops[-1].receiver == dst

    @given(vpts(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_holder_progression_is_monotone_toward_destination(self, vpt, data):
        src = data.draw(st.integers(0, vpt.K - 1))
        dst = data.draw(st.integers(0, vpt.K - 1))
        prev = vpt.hamming(src, dst)
        for d in range(vpt.n):
            h = holder_after_stage(vpt, src, dst, d)
            dist = vpt.hamming(h, dst)
            assert dist <= prev
            prev = dist
        assert prev == 0

    @given(vpts(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_every_hop_is_a_neighbor_edge(self, vpt, data):
        src = data.draw(st.integers(0, vpt.K - 1))
        dst = data.draw(st.integers(0, vpt.K - 1))
        for hop in route(vpt, src, dst):
            assert vpt.are_neighbors(hop.sender, hop.receiver)


class TestPlanProperties:
    @given(vpt_and_pattern())
    @settings(max_examples=40, deadline=None)
    def test_stage_bounds_always_hold(self, vp):
        vpt, pattern = vp
        plan = build_plan(pattern, vpt)
        plan.check_stage_bounds()

    @given(vpt_and_pattern())
    @settings(max_examples=40, deadline=None)
    def test_volume_equals_weighted_hop_volume(self, vp):
        vpt, pattern = vp
        plan = build_plan(pattern, vpt)
        assert plan.total_volume == weighted_hop_volume(pattern, vpt)

    @given(vpt_and_pattern())
    @settings(max_examples=40, deadline=None)
    def test_sent_equals_received(self, vp):
        vpt, pattern = vp
        plan = build_plan(pattern, vpt)
        assert plan.sent_counts().sum() == plan.recv_counts().sum()
        assert plan.sent_words().sum() == plan.recv_words().sum()

    @given(vpt_and_pattern())
    @settings(max_examples=40, deadline=None)
    def test_submessage_conservation(self, vp):
        # every original message is inside exactly hamming(s,d) physical
        # messages; total submessage slots across stages must match
        vpt, pattern = vp
        plan = build_plan(pattern, vpt)
        slots = sum(int(st_.nsub.sum()) for st_ in plan.stages)
        expected = int(vpt.hamming_array(pattern.src, pattern.dst).sum())
        assert slots == expected

    @given(vpt_and_pattern())
    @settings(max_examples=30, deadline=None)
    def test_coalescing_never_increases_messages(self, vp):
        vpt, pattern = vp
        merged = build_plan(pattern, vpt)
        split = build_plan(pattern, vpt, coalesce=False)
        assert merged.num_physical_messages <= split.num_physical_messages
        assert merged.total_volume == split.total_volume

    @given(vpt_and_pattern(), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_mapping_preserves_volume_totals_and_bounds(self, vp, rnd):
        vpt, pattern = vp
        perm = list(range(pattern.K))
        rnd.shuffle(perm)
        mapped = apply_mapping(pattern, np.array(perm, dtype=np.int64))
        assert mapped.total_words == pattern.total_words
        build_plan(mapped, vpt).check_stage_bounds()


class TestDimensioningProperties:
    @given(st.integers(1, 14), st.data())
    @settings(max_examples=60, deadline=None)
    def test_balanced_sizes_multiply_to_K(self, lg, data):
        from math import prod

        from repro.core import optimal_dim_sizes

        K = 2**lg
        n = data.draw(st.integers(1, lg))
        sizes = optimal_dim_sizes(K, n)
        assert prod(sizes) == K
        assert max(sizes) <= 2 * min(sizes)

    @given(st.integers(2, 10), st.data())
    @settings(max_examples=40, deadline=None)
    def test_hypercube_is_extreme_dimension(self, lg, data):
        K = 2**lg
        vpt = make_vpt(K, lg)
        assert vpt.is_hypercube()
        assert vpt.max_message_count_bound() == lg
