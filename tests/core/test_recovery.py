"""Unit tests for the post-shrink topology rebuild."""

import numpy as np
import pytest

from repro.core import VirtualProcessTopology, build_recovery, shrink_dim_sizes
from repro.errors import PartitionError, TopologyError
from repro.partition import Partition, block_partition, reassign_parts


class TestShrinkDimSizes:
    def test_power_of_two_stays_balanced(self):
        assert shrink_dim_sizes(64, 2) == (8, 8)
        assert shrink_dim_sizes(64, 3) == (4, 4, 4)

    def test_shrunk_count_redimensions(self):
        # 62 = 2 * 31: two prime factors support exactly two dimensions
        assert shrink_dim_sizes(62, 2) == (31, 2)
        assert shrink_dim_sizes(62, 3) == (31, 2)

    def test_prime_forces_direct_fallback(self):
        assert shrink_dim_sizes(61, 2) is None
        assert shrink_dim_sizes(7, 3) is None

    def test_degenerate_counts(self):
        assert shrink_dim_sizes(1, 2) is None
        assert shrink_dim_sizes(8, 1) is None


class TestReassignParts:
    def test_no_dead_returns_same_partition(self):
        p = block_partition(20, 4)
        assert reassign_parts(p, ()) is p

    def test_dead_rows_go_to_least_loaded_survivor(self):
        parts = np.array([0, 0, 0, 1, 2, 2])  # loads: 3, 1, 2
        p = Partition(parts, 3)
        out = reassign_parts(p, (0,))
        assert out.rows_of(0).size == 0
        # part 1 was lightest, so it absorbs part 0's three rows
        assert sorted(out.rows_of(1)) == [0, 1, 2, 3]
        assert sorted(out.rows_of(2)) == [4, 5]

    def test_sequential_folding_tracks_updated_loads(self):
        parts = np.array([0, 1, 1, 2, 3, 3, 3])
        p = Partition(parts, 4)
        out = reassign_parts(p, (0, 1))
        # part 0's row goes to part 2 (load 1 < 3); then part 1's two
        # rows go to part 2 as well (load 2 < 3)
        assert sorted(out.rows_of(2)) == [0, 1, 2, 3]
        assert sorted(out.rows_of(3)) == [4, 5, 6]

    def test_all_dead_rejected(self):
        p = block_partition(6, 2)
        with pytest.raises(PartitionError, match="no surviving"):
            reassign_parts(p, (0, 1))

    def test_dead_out_of_range_rejected(self):
        p = block_partition(6, 2)
        with pytest.raises(PartitionError, match="outside"):
            reassign_parts(p, (5,))


class TestBuildRecovery:
    def test_empty_dead_is_identity(self):
        p = block_partition(32, 8)
        plan = build_recovery(p, (), 2)
        assert plan.survivors == tuple(range(8))
        assert plan.new_K == 8
        assert plan.partition == p
        assert plan.dim_sizes == (4, 2)
        for r in range(8):
            assert plan.vid_of(r) == r and plan.rank_of(r) == r

    def test_survivors_renumbered_densely(self):
        p = block_partition(40, 8)
        plan = build_recovery(p, (2, 5), 2)
        assert plan.survivors == (0, 1, 3, 4, 6, 7)
        assert plan.vid_of(3) == 2
        assert plan.rank_of(2) == 3
        with pytest.raises(TopologyError, match="not a survivor"):
            plan.vid_of(5)

    def test_rows_conserved_and_vid_space_dense(self):
        p = block_partition(40, 8)
        plan = build_recovery(p, (0, 7), 2)
        assert plan.partition.K == 6
        counts = plan.partition.row_counts()
        assert counts.sum() == 40
        assert (counts > 0).all()

    def test_vpt_matches_shrunk_dim_sizes(self):
        p = block_partition(64, 64)
        plan = build_recovery(p, (9, 41), 2)
        assert plan.new_K == 62
        assert plan.dim_sizes == (31, 2)
        assert isinstance(plan.vpt, VirtualProcessTopology)
        assert plan.message_bound() == 31

    def test_prime_survivor_count_falls_back_to_direct(self):
        p = block_partition(32, 8)
        plan = build_recovery(p, (3,), 2)  # K' = 7, prime
        assert plan.vpt is None and plan.dim_sizes is None
        assert plan.message_bound() == 6  # flat-topology bound K' - 1

    def test_dead_deduplicated_and_sorted(self):
        p = block_partition(24, 6)
        plan = build_recovery(p, [4, 1, 4], 2)
        assert plan.dead == (1, 4)

    def test_dead_out_of_range_rejected(self):
        p = block_partition(24, 6)
        with pytest.raises(TopologyError, match="outside"):
            build_recovery(p, (6,), 2)

    def test_no_survivors_rejected(self):
        p = block_partition(4, 2)
        with pytest.raises(TopologyError, match="no survivors"):
            build_recovery(p, (0, 1), 2)
