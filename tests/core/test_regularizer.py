"""Unit tests for the Regularizer facade."""

import numpy as np
import pytest

from repro import CommPattern, Regularizer, VirtualProcessTopology, make_vpt
from repro.errors import PlanError
from repro.network import BGQ


def hotspot(K=64, seed=0):
    return CommPattern.random(K, avg_degree=4, words=8, hot_processes=2, seed=seed)


class TestConstruction:
    def test_from_pattern_and_dimension(self):
        reg = Regularizer(hotspot(), dimension=3)
        assert reg.K == 64
        assert reg.vpt == make_vpt(64, 3)
        assert not reg.is_baseline

    def test_dimension_one_is_baseline(self):
        reg = Regularizer(hotspot(), dimension=1)
        assert reg.is_baseline

    def test_from_sendsets(self):
        reg = Regularizer([{1: 4}, {0: 2}], dimension=1)
        assert reg.K == 2

    def test_explicit_vpt(self):
        vpt = VirtualProcessTopology((8, 2, 4))
        reg = Regularizer(hotspot(), vpt=vpt)
        assert reg.vpt is vpt

    def test_both_dimension_and_vpt_rejected(self):
        with pytest.raises(PlanError):
            Regularizer(hotspot(), dimension=2, vpt=make_vpt(64, 2))

    def test_neither_rejected(self):
        with pytest.raises(PlanError):
            Regularizer(hotspot())

    def test_vpt_K_mismatch(self):
        with pytest.raises(PlanError):
            Regularizer(hotspot(), vpt=make_vpt(32, 2))


class TestStatsAndTiming:
    def test_stats_bound(self):
        reg = Regularizer(hotspot(), dimension=3)
        assert reg.stats().mmax <= reg.vpt.max_message_count_bound()

    def test_plan_cached(self):
        reg = Regularizer(hotspot(), dimension=2)
        assert reg.plan is reg.plan

    def test_time_on(self):
        reg = Regularizer(hotspot(), dimension=3)
        assert reg.time_on(BGQ) > 0

    def test_sweep(self):
        regs = Regularizer.sweep(hotspot())
        assert sorted(regs) == [1, 2, 3, 4, 5, 6]
        mmaxes = [regs[n].stats().mmax for n in sorted(regs)]
        assert mmaxes == sorted(mmaxes, reverse=True)

    def test_sweep_subset(self):
        regs = Regularizer.sweep(hotspot(), dimensions=[2, 4])
        assert sorted(regs) == [2, 4]


class TestExchange:
    def test_default_payload_delivery(self):
        p = hotspot(K=16, seed=3)
        res = Regularizer(p, dimension=2).exchange()
        delivered = sum(len(items) for items in res.delivered)
        assert delivered == p.num_messages

    def test_baseline_exchange(self):
        p = hotspot(K=16, seed=3)
        res = Regularizer(p, dimension=1).exchange()
        assert sum(len(x) for x in res.delivered) == p.num_messages

    def test_custom_payloads(self):
        p = CommPattern.from_arrays(8, [0, 3], [5, 1], [2, 3])
        payloads = [dict() for _ in range(8)]
        payloads[0][5] = ("hello", "there")
        payloads[3][1] = ("a", "b", "c")
        res = Regularizer(p, dimension=3).exchange(payloads)
        assert res.delivered[5] == [(0, ("hello", "there"))]
        assert res.delivered[1] == [(3, ("a", "b", "c"))]

    def test_remap_roundtrip(self):
        # with remap on, deliveries still refer to original process ids
        p = CommPattern.from_arrays(16, [0, 7, 9], [9, 2, 0], [4, 4, 4])
        reg = Regularizer(p, dimension=4, remap=True)
        payloads = [dict() for _ in range(16)]
        payloads[0][9] = ["x"] * 4
        payloads[7][2] = ["y"] * 4
        payloads[9][0] = ["z"] * 4
        res = reg.exchange(payloads)
        assert res.delivered[9] == [(0, ["x"] * 4)]
        assert res.delivered[2] == [(7, ["y"] * 4)]
        assert res.delivered[0] == [(9, ["z"] * 4)]

    def test_remap_reduces_or_keeps_volume(self):
        rng = np.random.default_rng(2)
        perm = rng.permutation(64)
        src = perm[:32].astype(np.int64)
        dst = perm[32:].astype(np.int64)
        p = CommPattern.from_arrays(64, src, dst, np.full(32, 100))
        plain = Regularizer(p, dimension=6)
        mapped = Regularizer(p, dimension=6, remap=True)
        assert mapped.plan.total_volume <= plain.plan.total_volume

    def test_exchange_timed(self):
        res = Regularizer(hotspot(K=16), dimension=2).exchange(machine=BGQ)
        assert res.makespan_us > 0


class TestRefinedRemap:
    def test_refined_never_worse_than_rcm(self):
        rng = np.random.default_rng(4)
        perm = rng.permutation(64)
        src = perm[:32].astype(np.int64)
        dst = perm[32:].astype(np.int64)
        p = CommPattern.from_arrays(64, src, dst, np.full(32, 100))
        rcm = Regularizer(p, dimension=6, remap="rcm")
        refined = Regularizer(p, dimension=6, remap="refined")
        assert refined.plan.total_volume <= rcm.plan.total_volume

    def test_refined_roundtrip_delivery(self):
        p = CommPattern.from_arrays(16, [0, 7], [9, 2], [4, 4])
        reg = Regularizer(p, dimension=4, remap="refined")
        payloads = [dict() for _ in range(16)]
        payloads[0][9] = ["x"] * 4
        payloads[7][2] = ["y"] * 4
        res = reg.exchange(payloads)
        assert res.delivered[9] == [(0, ["x"] * 4)]
        assert res.delivered[2] == [(7, ["y"] * 4)]

    def test_unknown_mode_rejected(self):
        with pytest.raises(PlanError):
            Regularizer(hotspot(), dimension=2, remap="simulated-annealing")
