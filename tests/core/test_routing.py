"""Unit tests for dimension-ordered routing (Section 3)."""

import numpy as np
import pytest

from repro.core import (
    VirtualProcessTopology,
    holder_after_stage,
    holder_after_stage_array,
    route,
    route_length,
)
from repro.errors import RoutingError


class TestHolderAfterStage:
    def test_before_any_stage_is_source(self):
        vpt = VirtualProcessTopology((4, 4, 4))
        assert holder_after_stage(vpt, 5, 60, -1) == 5

    def test_after_last_stage_is_destination(self):
        vpt = VirtualProcessTopology((4, 4, 4))
        for src, dst in [(0, 63), (5, 5), (17, 42)]:
            assert holder_after_stage(vpt, src, dst, vpt.n - 1) == dst

    def test_holder_digits_mix_src_and_dst(self):
        vpt = VirtualProcessTopology((4, 4, 4))
        src, dst = vpt.rank_of((1, 2, 3)), vpt.rank_of((3, 0, 1))
        h = holder_after_stage(vpt, src, dst, 0)
        assert vpt.coords(h) == (3, 2, 3)
        h = holder_after_stage(vpt, src, dst, 1)
        assert vpt.coords(h) == (3, 0, 3)

    def test_holder_stays_when_digit_matches(self):
        vpt = VirtualProcessTopology((4, 4))
        src = vpt.rank_of((2, 1))
        dst = vpt.rank_of((2, 3))  # same dim-0 digit
        assert holder_after_stage(vpt, src, dst, 0) == src

    def test_invalid_stage(self):
        vpt = VirtualProcessTopology((4, 4))
        with pytest.raises(RoutingError):
            holder_after_stage(vpt, 0, 1, 2)
        with pytest.raises(RoutingError):
            holder_after_stage(vpt, 0, 1, -2)

    def test_invalid_rank(self):
        vpt = VirtualProcessTopology((4, 4))
        with pytest.raises(RoutingError):
            holder_after_stage(vpt, 16, 0, 0)

    def test_array_matches_scalar(self):
        vpt = VirtualProcessTopology((2, 8, 4))
        rng = np.random.default_rng(3)
        src = rng.integers(0, vpt.K, 200)
        dst = rng.integers(0, vpt.K, 200)
        for d in range(-1, vpt.n):
            arr = holder_after_stage_array(vpt, src, dst, d)
            for i, j, h in zip(src, dst, arr):
                assert h == holder_after_stage(vpt, int(i), int(j), d)


class TestRoute:
    def test_route_reaches_destination(self):
        vpt = VirtualProcessTopology((4, 2, 8))
        rng = np.random.default_rng(7)
        for _ in range(50):
            src, dst = rng.integers(0, vpt.K, 2)
            hops = route(vpt, int(src), int(dst))
            if src == dst:
                assert hops == []
            else:
                assert hops[-1].receiver == dst
                assert hops[0].sender == src

    def test_hop_count_is_hamming_distance(self):
        vpt = VirtualProcessTopology((4, 4, 4))
        rng = np.random.default_rng(11)
        for _ in range(100):
            src, dst = (int(x) for x in rng.integers(0, vpt.K, 2))
            assert len(route(vpt, src, dst)) == vpt.hamming(src, dst)
            assert route_length(vpt, src, dst) == vpt.hamming(src, dst)

    def test_stages_strictly_increase(self):
        vpt = VirtualProcessTopology((2, 2, 2, 2, 2))
        hops = route(vpt, 0, 31)
        stages = [h.stage for h in hops]
        assert stages == sorted(stages)
        assert len(set(stages)) == len(stages)

    def test_every_hop_connects_neighbors(self):
        vpt = VirtualProcessTopology((4, 4, 4))
        for src, dst in [(0, 63), (13, 50), (1, 2)]:
            for h in route(vpt, src, dst):
                assert vpt.are_neighbors(h.sender, h.receiver)
                assert vpt.neighbor_dim(h.sender, h.receiver) == h.stage

    def test_hypercube_route_is_ecube(self):
        # in a hypercube the route flips differing bits low-to-high
        vpt = VirtualProcessTopology((2, 2, 2))
        hops = route(vpt, 0b000, 0b101)
        assert [h.stage for h in hops] == [0, 2]
        assert [h.receiver for h in hops] == [0b001, 0b101]

    def test_flat_topology_single_direct_hop(self):
        vpt = VirtualProcessTopology((16,))
        hops = route(vpt, 3, 12)
        assert len(hops) == 1
        assert (hops[0].sender, hops[0].receiver, hops[0].stage) == (3, 12, 0)

    def test_route_length_bad_rank(self):
        vpt = VirtualProcessTopology((4, 4))
        with pytest.raises(RoutingError):
            route_length(vpt, 0, 99)

    def test_paper_figure4_example(self):
        # T3(4,4,4) with paper coords (P^3,P^2,P^1) 1-based; ours are
        # 0-based reversed.  P_a=(2,2,1)->c=(0,1,1); P_c=(2,2,3)->(2,1,1)
        # The first hop of every message from P_a goes to P_h=(2,2,3)
        # if the first-dim digits differ.
        vpt = VirtualProcessTopology((4, 4, 4))
        pa = vpt.rank_of((0, 1, 1))
        ph = vpt.rank_of((2, 1, 1))
        pc = vpt.rank_of((2, 3, 3))  # paper (4,4,3)
        hops = route(vpt, pa, pc)
        assert hops[0].receiver == ph
        assert hops[0].stage == 0
