"""Unit tests for pattern/plan serialization."""

import numpy as np
import pytest

from repro.core import (
    CommPattern,
    build_plan,
    load_pattern,
    load_plan,
    make_vpt,
    save_pattern,
    save_plan,
)
from repro.errors import PlanError


class TestPatternRoundtrip:
    def test_exact(self, tmp_path):
        p = CommPattern.random(64, avg_degree=5, hot_processes=2, seed=1, words=7)
        path = tmp_path / "p.npz"
        save_pattern(path, p)
        q = load_pattern(path)
        assert q.K == p.K
        assert np.array_equal(q.src, p.src)
        assert np.array_equal(q.dst, p.dst)
        assert np.array_equal(q.size, p.size)

    def test_empty(self, tmp_path):
        p = CommPattern.from_arrays(8, [], [], [])
        path = tmp_path / "e.npz"
        save_pattern(path, p)
        assert load_pattern(path).num_messages == 0

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(PlanError):
            load_pattern(path)


class TestPlanRoundtrip:
    def test_exact(self, tmp_path):
        p = CommPattern.random(32, avg_degree=4, seed=2, words=3)
        plan = build_plan(p, make_vpt(32, 3), header_words=2)
        path = tmp_path / "plan.npz"
        save_plan(path, plan)
        q = load_plan(path)
        assert q.vpt == plan.vpt
        assert q.header_words == 2
        assert q.n_stages == plan.n_stages
        assert q.max_message_count == plan.max_message_count
        assert q.total_volume == plan.total_volume
        assert np.array_equal(q.forward_occupancy, plan.forward_occupancy)
        for a, b in zip(q.stages, plan.stages):
            assert np.array_equal(a.sender, b.sender)
            assert np.array_equal(a.total_words, b.total_words)

    def test_loaded_plan_usable_for_timing(self, tmp_path):
        from repro.network import BGQ, time_plan

        p = CommPattern.random(32, avg_degree=4, seed=3, words=5)
        plan = build_plan(p, make_vpt(32, 2))
        path = tmp_path / "t.npz"
        save_plan(path, plan)
        q = load_plan(path)
        assert time_plan(q, BGQ).total_us == pytest.approx(time_plan(plan, BGQ).total_us)

    def test_plan_magic_checked(self, tmp_path):
        p = CommPattern.random(16, avg_degree=2, seed=0)
        path = tmp_path / "pat.npz"
        save_pattern(path, p)
        with pytest.raises(PlanError):
            load_plan(path)
