"""Unit tests for persistent-exchange side tables and their repair."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import CommPattern, PatternDelta, build_plan, repair_plan
from repro.core.dimensioning import make_vpt
from repro.core.stfw import (
    SideTables,
    recv_counts_from_plan,
    repair_side_tables,
    side_tables_from_plan,
)
from repro.errors import PlanError


def assert_tables_identical(got: SideTables, ref: SideTables):
    """Byte-identity — values AND dtypes, the service's own check."""
    assert got.recv_counts.dtype == ref.recv_counts.dtype
    assert got.recv_counts.shape == ref.recv_counts.shape
    assert got.recv_counts.tobytes() == ref.recv_counts.tobytes()
    assert got.origin_counts.dtype == ref.origin_counts.dtype
    assert got.origin_counts.shape == ref.origin_counts.shape
    assert got.origin_counts.tobytes() == ref.origin_counts.tobytes()


def drop_route_keys(plan):
    """The same plan with every stage's cached route key stripped."""
    return replace(
        plan, stages=[replace(st, route_key=None) for st in plan.stages]
    )


class TestFromPlan:
    def test_matches_recv_counts_and_pattern(self):
        pattern = CommPattern.random(16, avg_degree=4, seed=3)
        plan = build_plan(pattern, make_vpt(16, 2))
        tables = side_tables_from_plan(plan)
        assert tables.recv_counts.tobytes() == recv_counts_from_plan(plan).tobytes()
        expected_origin = np.bincount(pattern.dst, minlength=16)
        assert (tables.origin_counts == expected_origin).all()
        assert tables.recv_counts.dtype == np.int64
        assert tables.origin_counts.dtype == np.int64

    def test_copy_is_independent(self):
        pattern = CommPattern.random(8, avg_degree=3, seed=1)
        plan = build_plan(pattern, make_vpt(8, 2))
        tables = side_tables_from_plan(plan)
        dup = tables.copy()
        dup.recv_counts[0, 0] += 7
        dup.origin_counts[0] += 7
        assert_tables_identical(tables, side_tables_from_plan(plan))


class TestRepair:
    @pytest.mark.parametrize("dims", [2, 3])
    def test_chained_drift_byte_identical(self, dims):
        """Eight chained 10% drift steps on T_2 and T_3, repaired vs rebuilt."""
        pattern = CommPattern.random(64, avg_degree=5, seed=11)
        vpt = make_vpt(64, dims)
        plan = build_plan(pattern, vpt)
        tables = side_tables_from_plan(plan)
        for step in range(8):
            delta = PatternDelta.random(plan.pattern, 0.10, seed=100 + step)
            repaired = repair_plan(plan, delta)
            tables = repair_side_tables(tables, plan, repaired, delta)
            assert_tables_identical(tables, side_tables_from_plan(repaired))
            plan = repaired

    def test_route_key_less_plans_are_repairable(self):
        """Stages without the cached key derive it from sender/receiver."""
        pattern = CommPattern.random(32, avg_degree=4, seed=5)
        vpt = make_vpt(32, 2)
        plan = build_plan(pattern, vpt)
        delta = PatternDelta.random(pattern, 0.10, seed=6)
        repaired = repair_plan(plan, delta)
        tables = side_tables_from_plan(plan)
        got = repair_side_tables(
            tables, drop_route_keys(plan), drop_route_keys(repaired), delta
        )
        assert_tables_identical(got, side_tables_from_plan(repaired))

    def test_input_tables_never_mutated(self):
        pattern = CommPattern.random(16, avg_degree=4, seed=2)
        plan = build_plan(pattern, make_vpt(16, 2))
        tables = side_tables_from_plan(plan)
        before = (tables.recv_counts.copy(), tables.origin_counts.copy())
        delta = PatternDelta.random(pattern, 0.10, seed=9)
        repair_side_tables(tables, plan, repair_plan(plan, delta), delta)
        assert (tables.recv_counts == before[0]).all()
        assert (tables.origin_counts == before[1]).all()


class TestRepairErrors:
    def _setup(self, K=16, seed=4):
        pattern = CommPattern.random(K, avg_degree=4, seed=seed)
        plan = build_plan(pattern, make_vpt(K, 2))
        delta = PatternDelta.random(pattern, 0.10, seed=seed + 1)
        return plan, repair_plan(plan, delta), delta

    def test_k_mismatch(self):
        plan, repaired, delta = self._setup()
        other = build_plan(
            CommPattern.random(8, avg_degree=3, seed=0), make_vpt(8, 2)
        )
        with pytest.raises(PlanError, match="matching K"):
            repair_side_tables(
                side_tables_from_plan(plan), plan, other, delta
            )

    def test_stage_count_mismatch(self):
        plan, repaired, delta = self._setup()
        other = build_plan(plan.pattern, make_vpt(16, 4))
        with pytest.raises(PlanError, match="stages"):
            repair_side_tables(
                side_tables_from_plan(plan), plan, other, delta
            )

    def test_wrong_shape_tables(self):
        plan, repaired, delta = self._setup()
        bad = SideTables(
            recv_counts=np.zeros((1, plan.K), dtype=np.int64),
            origin_counts=np.zeros(plan.K, dtype=np.int64),
        )
        with pytest.raises(PlanError, match="recv_counts shape"):
            repair_side_tables(bad, plan, repaired, delta)

    def test_foreign_delta_goes_negative(self):
        """A delta that does not apply drives a count negative."""
        plan, repaired, delta = self._setup()
        empty = SideTables(
            recv_counts=np.zeros(
                (len(plan.stages), plan.K), dtype=np.int64
            ),
            origin_counts=np.zeros(plan.K, dtype=np.int64),
        )
        if delta.remove_dst.size == 0:
            pytest.skip("delta removed nothing; no negative path to hit")
        with pytest.raises(PlanError, match="negative"):
            repair_side_tables(empty, plan, repaired, delta)
