"""Executable Algorithm 1: delivery correctness and plan cross-validation."""

import numpy as np
import pytest

from repro.core import (
    CommPattern,
    VirtualProcessTopology,
    build_plan,
    make_vpt,
    recv_counts_from_plan,
    run_exchange,
)
from repro.errors import PlanError
from repro.network import BGQ


def expected_deliveries(pattern):
    """{dest: set of (src, first_word)} ground truth for default payloads."""
    out = {i: set() for i in range(pattern.K)}
    for s, t, w in zip(pattern.src, pattern.dst, pattern.size):
        out[int(t)].add((int(s), int(s) * pattern.K + int(t), int(w)))
    return out


def check_delivery(pattern, result):
    want = expected_deliveries(pattern)
    for rank, items in enumerate(result.delivered):
        got = set()
        for src, payload in items:
            arr = np.asarray(payload)
            assert (arr == arr[0]).all() if arr.size else True
            got.add((src, int(arr[0]) if arr.size else -1, arr.size))
        want_rank = {x for x in want[rank] if x[2] > 0}
        got = {x for x in got if x[2] > 0}
        assert got == want_rank, f"rank {rank} deliveries differ"


class TestDeliveryCorrectness:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_random_pattern_planned(self, n):
        p = CommPattern.random(32, avg_degree=5, hot_processes=2, seed=n, words=3)
        res = run_exchange(p, make_vpt(32, n))
        check_delivery(p, res)

    @pytest.mark.parametrize("n", [2, 4])
    def test_random_pattern_dynamic(self, n):
        p = CommPattern.random(16, avg_degree=4, seed=n, words=2)
        res = run_exchange(p, make_vpt(16, n), mode="dynamic")
        check_delivery(p, res)

    def test_all_to_all(self):
        p = CommPattern.all_to_all(16, words=2)
        res = run_exchange(p, make_vpt(16, 2))
        check_delivery(p, res)
        for items in res.delivered:
            assert len(items) == 15

    def test_hypercube(self):
        p = CommPattern.random(32, avg_degree=6, seed=1, words=1)
        res = run_exchange(p, make_vpt(32, 5))
        check_delivery(p, res)

    def test_empty_pattern(self):
        p = CommPattern.from_arrays(8, [], [], [])
        res = run_exchange(p, make_vpt(8, 3))
        assert all(items == [] for items in res.delivered)

    def test_direct_exchange(self):
        p = CommPattern.random(32, avg_degree=5, hot_processes=1, seed=9, words=4)
        res = run_exchange(p, scheme="direct")
        check_delivery(p, res)

    def test_nonuniform_vpt(self):
        p = CommPattern.random(64, avg_degree=6, seed=3, words=2)
        res = run_exchange(p, VirtualProcessTopology((8, 2, 4)))
        check_delivery(p, res)

    def test_payload_objects_pass_through(self):
        # arbitrary sized payloads (lists) survive forwarding untouched
        p = CommPattern.from_arrays(8, [0, 7], [7, 1], [3, 2])
        payloads = [dict() for _ in range(8)]
        payloads[0][7] = ["a", "b", "c"]
        payloads[7][1] = ["x", "y"]
        res = run_exchange(p, make_vpt(8, 3), payloads=payloads)
        assert res.delivered[7] == [(0, ["a", "b", "c"])]
        assert res.delivered[1] == [(7, ["x", "y"])]

    def test_mismatched_vpt_rejected(self):
        p = CommPattern.all_to_all(8)
        with pytest.raises(PlanError):
            run_exchange(p, make_vpt(16, 2))

    def test_unknown_mode_rejected(self):
        p = CommPattern.all_to_all(8)
        with pytest.raises(PlanError):
            run_exchange(p, make_vpt(8, 2), mode="bogus")


class TestPlanCrossValidation:
    """The executable algorithm must reproduce the plan's physical messages."""

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_traced_messages_equal_plan(self, n):
        K = 16
        p = CommPattern.random(K, avg_degree=4, hot_processes=2, seed=n + 10, words=2)
        vpt = make_vpt(K, n)
        plan = build_plan(p, vpt)
        res = run_exchange(p, vpt, trace=True)

        for d, st in enumerate(plan.stages):
            plan_msgs = {
                (int(s), int(r)): int(w)
                for s, r, w in zip(st.sender, st.receiver, st.total_words)
            }
            traced = {}
            for rec in res.run.trace:
                if rec.tag == d:
                    key = (rec.source, rec.dest)
                    assert key not in traced, "duplicate physical message"
                    traced[key] = rec.words
            assert traced == plan_msgs, f"stage {d} differs"

    def test_recv_counts_from_plan(self):
        p = CommPattern.all_to_all(16)
        plan = build_plan(p, make_vpt(16, 2))
        counts = recv_counts_from_plan(plan)
        assert counts.shape == (2, 16)
        # all-to-all on T2(4,4): every rank receives 3 messages per stage
        assert (counts == 3).all()

    def test_dynamic_matches_planned_deliveries(self):
        p = CommPattern.random(16, avg_degree=5, seed=5, words=2)
        vpt = make_vpt(16, 4)
        a = run_exchange(p, vpt, mode="planned")
        b = run_exchange(p, vpt, mode="dynamic")
        norm = lambda items: sorted((s, tuple(np.asarray(x))) for s, x in items)
        for ra, rb in zip(a.delivered, b.delivered):
            assert norm(ra) == norm(rb)


class TestTiming:
    def test_stfw_beats_bl_on_hotspot_pattern(self):
        p = CommPattern.random(64, avg_degree=2, hot_processes=3, seed=2, words=2)
        bl = run_exchange(p, scheme="direct", machine=BGQ)
        stfw = run_exchange(p, make_vpt(64, 3), machine=BGQ)
        assert stfw.makespan_us < bl.makespan_us

    def test_makespan_positive_with_machine(self):
        p = CommPattern.random(16, avg_degree=3, seed=0, words=1)
        res = run_exchange(p, make_vpt(16, 2), machine=BGQ)
        assert res.makespan_us > 0

    def test_self_message_rejected(self):
        vpt = make_vpt(8, 2)
        p = CommPattern.from_arrays(8, [0], [1], [1])
        payloads = [dict() for _ in range(8)]
        payloads[0] = {0: [1]}  # illegal self message smuggled into payloads
        with pytest.raises(PlanError):
            run_exchange(p, vpt, payloads=payloads)
