"""Fault-tolerant exchange tests: detours, receipts, graceful loss.

The headline scenario (the issue's acceptance criterion): a FaultPlan
kills one interior forwarder mid-exchange.  Fault-tolerant STFW must
still deliver **every** payload that neither originates nor terminates
at the dead rank, while the same plan against plain STFW reports
stranded submessages — both deterministically from the same seed.
"""

import pytest

from repro.core import (
    CommPattern,
    make_vpt,
    run_exchange,
)
from repro.core.routing import route
from repro.experiments.faults import busiest_forwarder
from repro.metrics import delivered_pairs, expected_pairs
from repro.network import BGQ
from repro.simmpi import FaultPlan

#: fast reliable-transport knobs shared by the tests
FT = dict(timeout_us=50.0, max_retries=2, backoff=2.0)


def all_pairs(pattern):
    return {(int(s), int(t)) for s, t in zip(pattern.src, pattern.dst)}


class TestFaultFree:
    def test_ft_stfw_delivers_everything(self):
        pattern = CommPattern.random(16, avg_degree=3, seed=3)
        vpt = make_vpt(16, 2)
        res = run_exchange(pattern, vpt, on_fault="tolerate", machine=BGQ, **FT)
        assert res.crashed == ()
        assert delivered_pairs(res.delivered) == all_pairs(pattern)
        assert all(r.lost == [] for r in res.reports)
        assert all(r.dead_peers == [] for r in res.reports)

    def test_ft_direct_delivers_everything(self):
        pattern = CommPattern.random(16, avg_degree=3, seed=3)
        res = run_exchange(pattern, scheme="direct", on_fault="tolerate", machine=BGQ, **FT)
        assert delivered_pairs(res.delivered) == all_pairs(pattern)
        assert all(r.lost == [] for r in res.reports)

    def test_payloads_arrive_intact(self):
        pattern = CommPattern.random(8, avg_degree=2, seed=1)
        vpt = make_vpt(8, 2)
        res = run_exchange(pattern, vpt, on_fault="tolerate", machine=BGQ, **FT)
        for dst, msgs in enumerate(res.delivered):
            for src, payload in msgs:
                # synthetic payloads encode (src, dst): src * K + dst
                assert list(payload) == [src * pattern.K + dst] * len(payload)


class TestForwarderCrash:
    """The acceptance scenario."""

    K = 32
    SEED = 0

    @pytest.fixture(scope="class")
    def scenario(self):
        pattern = CommPattern.random(self.K, avg_degree=4, seed=self.SEED)
        vpt = make_vpt(self.K, 2)
        base = run_exchange(pattern, vpt, machine=BGQ)
        dead = busiest_forwarder(pattern, vpt)
        plan = FaultPlan(crashes={dead: 0.4 * base.makespan_us})
        return pattern, vpt, dead, plan

    def test_dead_rank_is_an_interior_forwarder(self, scenario):
        pattern, vpt, dead, plan = scenario
        hops = [
            h.receiver
            for s, t in zip(pattern.src, pattern.dst)
            for h in route(vpt, int(s), int(t))[:-1]
        ]
        assert dead in hops

    def test_ft_stfw_delivers_all_countable_pairs(self, scenario):
        pattern, vpt, dead, plan = scenario
        res = run_exchange(pattern, vpt, on_fault="tolerate", machine=BGQ, fault_plan=plan)
        assert res.crashed == (dead,)
        expected = expected_pairs(pattern, res.crashed)
        assert expected <= delivered_pairs(res.delivered)
        # losses may only involve the dead rank
        for r in res.reports:
            if r is None:
                continue
            for origin, dst in r.lost:
                assert dead in (origin, dst)

    def test_plain_stfw_reports_stranded_pairs(self, scenario):
        pattern, vpt, dead, plan = scenario
        res = run_exchange(
            pattern, vpt, machine=BGQ, fault_plan=plan, on_fault="partial"
        )
        assert not res.completed
        assert res.crashed == (dead,)
        assert len(res.pending) > 0  # blocked ranks, machine-readable
        stranded = expected_pairs(pattern, res.crashed) - delivered_pairs(res.delivered)
        assert stranded  # the non-tolerant exchange lost countable pairs

    def test_same_seed_is_deterministic(self, scenario):
        pattern, vpt, dead, plan = scenario

        def snapshot():
            res = run_exchange(pattern, vpt, on_fault="tolerate", machine=BGQ, fault_plan=plan)
            return (
                res.crashed,
                res.makespan_us,
                [
                    None
                    if r is None
                    else (
                        [(o, list(p)) for o, p in r.delivered],
                        r.lost,
                        r.dead_peers,
                    )
                    for r in res.reports
                ],
            )

        assert snapshot() == snapshot()


class TestLinkDrops:
    def test_ft_stfw_survives_heavy_drops(self):
        pattern = CommPattern.random(16, avg_degree=3, seed=7)
        vpt = make_vpt(16, 2)
        plan = FaultPlan(default_drop=0.1, seed=5)
        res = run_exchange(
            pattern, vpt, on_fault="tolerate", machine=BGQ, fault_plan=plan, timeout_us=100.0, max_retries=4
        )
        assert delivered_pairs(res.delivered) == all_pairs(pattern)

    def test_makespan_inflates_under_drops(self):
        pattern = CommPattern.random(16, avg_degree=3, seed=7)
        vpt = make_vpt(16, 2)
        clean = run_exchange(pattern, vpt, on_fault="tolerate", machine=BGQ, **FT)
        noisy = run_exchange(
            pattern,
            vpt, on_fault="tolerate",
            machine=BGQ,
            fault_plan=FaultPlan(default_drop=0.1, seed=5),
            **FT,
        )
        assert noisy.makespan_us > clean.makespan_us


class TestCrashAtStart:
    def test_origin_dead_from_t0(self):
        """A rank dead before sending anything: only its pairs are lost."""
        pattern = CommPattern.random(16, avg_degree=3, seed=11)
        vpt = make_vpt(16, 2)
        plan = FaultPlan(crashes={2: 0.0})
        res = run_exchange(pattern, vpt, on_fault="tolerate", machine=BGQ, fault_plan=plan)
        assert res.crashed == (2,)
        expected = expected_pairs(pattern, res.crashed)
        assert expected <= delivered_pairs(res.delivered)

    def test_senders_to_dead_rank_report_loss(self):
        pattern = CommPattern.random(16, avg_degree=3, seed=11)
        vpt = make_vpt(16, 2)
        dead = 2
        senders = {int(s) for s, t in zip(pattern.src, pattern.dst) if int(t) == dead}
        assert senders, "seed must produce senders to the dead rank"
        plan = FaultPlan(crashes={dead: 0.0})
        res = run_exchange(pattern, vpt, on_fault="tolerate", machine=BGQ, fault_plan=plan)
        lost_pairs = {p for r in res.reports if r is not None for p in r.lost}
        for s in senders:
            assert (s, dead) in lost_pairs


class TestNonPowerOfTwoShapes:
    """Satellite: detour routing at topologies whose dimension sizes
    are not powers of two — T_2(3, 5) and T_3(2, 3, 4)."""

    @pytest.mark.parametrize(
        "dim_sizes,seed", [((3, 5), 2), ((2, 3, 4), 4)], ids=["T2(3,5)", "T3(2,3,4)"]
    )
    def test_forwarder_crash_quiesces_and_delivers(self, dim_sizes, seed):
        from repro.core import VirtualProcessTopology

        K = 1
        for k in dim_sizes:
            K *= k
        pattern = CommPattern.random(K, avg_degree=3, seed=seed)
        vpt = VirtualProcessTopology(dim_sizes)
        base = run_exchange(pattern, vpt, machine=BGQ)
        dead = busiest_forwarder(pattern, vpt)
        plan = FaultPlan(crashes={dead: 0.4 * base.makespan_us})

        # the END-receipt quiesce must terminate (no deadlock, bounded
        # virtual time) despite the mixed-radix stage structure
        res = run_exchange(pattern, vpt, on_fault="tolerate", machine=BGQ, fault_plan=plan, **FT)
        assert res.crashed == (dead,)

        # delivered = fault-free pairs minus those touching the corpse
        expected = expected_pairs(pattern, res.crashed)
        assert expected <= delivered_pairs(res.delivered)
        for r in res.reports:
            if r is None:
                continue
            for origin, dst in r.lost:
                assert dead in (origin, dst)

    @pytest.mark.parametrize(
        "dim_sizes,seed", [((3, 5), 2), ((2, 3, 4), 4)], ids=["T2(3,5)", "T3(2,3,4)"]
    )
    def test_fault_free_baseline_delivers_everything(self, dim_sizes, seed):
        from repro.core import VirtualProcessTopology

        K = 1
        for k in dim_sizes:
            K *= k
        pattern = CommPattern.random(K, avg_degree=3, seed=seed)
        vpt = VirtualProcessTopology(dim_sizes)
        res = run_exchange(pattern, vpt, on_fault="tolerate", machine=BGQ, **FT)
        assert res.crashed == ()
        assert delivered_pairs(res.delivered) == all_pairs(pattern)


class TestExchangeResultShape:
    def test_ft_result_properties(self):
        pattern = CommPattern.random(8, avg_degree=2, seed=1)
        vpt = make_vpt(8, 2)
        res = run_exchange(pattern, vpt, on_fault="tolerate", machine=BGQ, **FT)
        assert len(res.reports) == 8
        assert len(res.delivered) == 8
        assert res.makespan_us == res.run.makespan_us
        assert res.crashed == ()

    def test_k_mismatch_rejected(self):
        from repro.errors import PlanError

        pattern = CommPattern.random(8, avg_degree=2, seed=1)
        vpt = make_vpt(16, 2)
        with pytest.raises(PlanError, match="pattern K"):
            run_exchange(pattern, vpt, on_fault="tolerate")


class TestCorruptForwarder:
    """Tentpole: per-hop checksums catch a corrupt forwarder at the
    next hop, implicate it, and ``quarantined`` routes around it."""

    K = 32
    SEED = 0

    @pytest.fixture(scope="class")
    def scenario(self):
        pattern = CommPattern.random(self.K, avg_degree=4, seed=self.SEED)
        vpt = make_vpt(self.K, 2)
        cf = busiest_forwarder(pattern, vpt)
        plan = FaultPlan(corrupt_forwarders={cf: 1.0}, seed=13)
        return pattern, vpt, cf, plan

    def test_corruption_detected_and_implicated(self, scenario):
        pattern, vpt, cf, plan = scenario
        res = run_exchange(
            pattern, vpt, on_fault="tolerate", machine=BGQ, fault_plan=plan, **FT
        )
        dropped = [p for r in res.reports if r for p in r.corrupt_dropped]
        implicated = {i for r in res.reports if r for i in r.implicated}
        assert dropped, "a p=1 corrupt forwarder must be caught"
        assert cf in implicated
        assert implicated == {cf}  # only the true poisoner is implicated

    def test_payloads_still_delivered_clean(self, scenario):
        """Dropped corrupt submessages are recovered from the origin,
        so every pair is delivered and every payload is pristine."""
        pattern, vpt, cf, plan = scenario
        res = run_exchange(
            pattern, vpt, on_fault="tolerate", machine=BGQ, fault_plan=plan, **FT
        )
        assert delivered_pairs(res.delivered) == all_pairs(pattern)
        for dst, msgs in enumerate(res.delivered):
            for src, payload in msgs:
                assert list(payload) == [src * pattern.K + dst] * len(payload)

    def test_quarantine_routes_around_the_forwarder(self, scenario):
        """With the poisoner quarantined, no submessage transits it, so
        even p=1 corruption produces zero corrupt drops."""
        pattern, vpt, cf, plan = scenario
        res = run_exchange(
            pattern,
            vpt,
            on_fault="tolerate",
            machine=BGQ,
            fault_plan=plan,
            quarantined=(cf,),
            **FT,
        )
        assert all(not r.corrupt_dropped for r in res.reports if r)
        assert delivered_pairs(res.delivered) == all_pairs(pattern)

    def test_quarantined_rank_still_sends_and_receives(self, scenario):
        """Quarantine removes a rank as a *forwarder* only: its own
        pairs (as origin and as destination) are all still delivered."""
        pattern, vpt, cf, plan = scenario
        res = run_exchange(
            pattern,
            vpt,
            on_fault="tolerate",
            machine=BGQ,
            fault_plan=plan,
            quarantined=(cf,),
            **FT,
        )
        own = {
            (s, t)
            for s, t in all_pairs(pattern)
            if cf in (s, t)
        }
        assert own <= delivered_pairs(res.delivered)

    def test_quarantine_knob_rejected_without_tolerate(self, scenario):
        from repro.errors import PlanError

        pattern, vpt, cf, plan = scenario
        with pytest.raises(PlanError, match="quarantined"):
            run_exchange(pattern, vpt, machine=BGQ, quarantined=(cf,))

    def test_corruption_is_seed_deterministic(self, scenario):
        pattern, vpt, cf, plan = scenario

        def snapshot():
            res = run_exchange(
                pattern, vpt, on_fault="tolerate", machine=BGQ,
                fault_plan=plan, **FT,
            )
            return (
                res.makespan_us,
                sorted(p for r in res.reports if r for p in r.corrupt_dropped),
            )

        assert snapshot() == snapshot()
