"""Unit tests for the Section 4 trade-off explorer."""

from math import log2

import pytest

from repro.core import (
    CommPattern,
    build_plan,
    make_vpt,
    recommend_dimension,
    tradeoff_curve,
)
from repro.errors import TopologyError
from repro.network import BGQ, CRAY_XK7


class TestCurve:
    def test_endpoints(self):
        curve = tradeoff_curve(256)
        assert curve[0].n == 1 and curve[0].message_bound == 255
        assert curve[-1].n == 8 and curve[-1].message_bound == 8
        assert curve[0].volume_factor == pytest.approx(1.0)

    def test_bound_monotone_decreasing(self):
        curve = tradeoff_curve(1024)
        bounds = [p.message_bound for p in curve]
        assert bounds == sorted(bounds, reverse=True)

    def test_volume_monotone_increasing(self):
        curve = tradeoff_curve(1024)
        vols = [p.volume_factor for p in curve]
        assert vols == sorted(vols)

    def test_volume_factor_matches_simulation(self):
        # the closed form must equal the simulated all-to-all volume
        K = 64
        p = CommPattern.all_to_all(K)
        for point in tradeoff_curve(K):
            plan = build_plan(p, make_vpt(K, point.n))
            simulated = plan.total_volume / (K * (K - 1))
            assert point.volume_factor == pytest.approx(simulated)

    def test_paper_example_factors(self):
        # Section 4, K=256: T4 factor 3.01, T8 4.02, T2 1.88
        by_n = {p.n: p for p in tradeoff_curve(256)}
        assert by_n[4].volume_factor == pytest.approx(3.01, abs=0.01)
        assert by_n[8].volume_factor == pytest.approx(4.02, abs=0.01)
        assert by_n[2].volume_factor == pytest.approx(1.88, abs=0.01)


class TestRecommendation:
    def test_latency_bound_machine_gets_high_dimension(self):
        rec = recommend_dimension(256, alpha_beta_ratio=10_000, words_per_peer=10)
        assert rec.n >= 6

    def test_bandwidth_bound_machine_gets_low_dimension(self):
        rec = recommend_dimension(256, alpha_beta_ratio=2, words_per_peer=5000)
        assert rec.n <= 3

    def test_stage_overhead_pulls_toward_middle(self):
        # the large-scale regime of Table 3: without overhead the max
        # dimension wins; with the lg(nodes) sync charge the winner is
        # an interior dimension, as measured
        K = 16384
        ratio = CRAY_XK7.latency_bandwidth_ratio
        free = recommend_dimension(K, alpha_beta_ratio=ratio, words_per_peer=100)
        nodes = CRAY_XK7.num_nodes(K)
        synced = recommend_dimension(
            K,
            alpha_beta_ratio=ratio,
            words_per_peer=100,
            stage_overhead_alphas=log2(nodes),
        )
        assert synced.n < free.n
        assert 3 <= synced.n <= 7  # Table 3's winners live here

    def test_machine_ratio_integration(self):
        rec = recommend_dimension(
            64, alpha_beta_ratio=BGQ.latency_bandwidth_ratio, words_per_peer=50
        )
        assert 1 <= rec.n <= 6

    def test_bad_ratio(self):
        with pytest.raises(TopologyError):
            tradeoff_curve(64)[0].predicted_cost(0.0, 1.0)
