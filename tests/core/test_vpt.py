"""Unit tests for the virtual process topology (Section 2 semantics)."""

import numpy as np
import pytest

from repro.core import VirtualProcessTopology
from repro.errors import TopologyError


class TestConstruction:
    def test_basic_properties(self):
        vpt = VirtualProcessTopology((4, 4, 4))
        assert vpt.K == 64
        assert vpt.n == 3
        assert vpt.dim_sizes == (4, 4, 4)
        assert vpt.weights == (1, 4, 16, 64)

    def test_nonuniform_dims(self):
        vpt = VirtualProcessTopology((8, 4, 2))
        assert vpt.K == 64
        assert vpt.weights == (1, 8, 32, 64)

    def test_single_dimension_is_flat(self):
        vpt = VirtualProcessTopology((16,))
        assert vpt.is_flat()
        assert vpt.K == 16
        assert vpt.max_message_count_bound() == 15

    def test_hypercube_detection(self):
        assert VirtualProcessTopology((2, 2, 2)).is_hypercube()
        assert not VirtualProcessTopology((4, 2)).is_hypercube()

    def test_empty_dims_rejected(self):
        with pytest.raises(TopologyError):
            VirtualProcessTopology(())

    def test_size_one_dimension_rejected(self):
        with pytest.raises(TopologyError):
            VirtualProcessTopology((4, 1, 4))

    def test_equality_and_hash(self):
        a = VirtualProcessTopology((4, 4))
        b = VirtualProcessTopology((4, 4))
        c = VirtualProcessTopology((2, 8))
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_non_power_of_two_allowed(self):
        # the VPT structure itself does not require powers of two
        vpt = VirtualProcessTopology((3, 5))
        assert vpt.K == 15


class TestCoordinates:
    def test_coords_roundtrip_all_ranks(self):
        vpt = VirtualProcessTopology((4, 2, 8))
        for r in vpt.ranks():
            assert vpt.rank_of(vpt.coords(r)) == r

    def test_coords_array_matches_scalar(self):
        vpt = VirtualProcessTopology((4, 4, 4))
        ranks = np.arange(vpt.K)
        arr = vpt.coords_array(ranks)
        for r in vpt.ranks():
            assert tuple(arr[r]) == vpt.coords(r)

    def test_rank_of_array_roundtrip(self):
        vpt = VirtualProcessTopology((8, 2, 4))
        ranks = np.arange(vpt.K)
        assert np.array_equal(vpt.rank_of_array(vpt.coords_array(ranks)), ranks)

    def test_digit_matches_coords(self):
        vpt = VirtualProcessTopology((2, 4, 8))
        for r in (0, 5, 17, 63):
            c = vpt.coords(r)
            for d in range(vpt.n):
                assert vpt.digit(r, d) == c[d]

    def test_digit_array(self):
        vpt = VirtualProcessTopology((4, 4))
        ranks = np.arange(16)
        for d in range(2):
            expected = np.array([vpt.digit(r, d) for r in ranks])
            assert np.array_equal(vpt.digit_array(ranks, d), expected)

    def test_out_of_range_rank(self):
        vpt = VirtualProcessTopology((4, 4))
        with pytest.raises(TopologyError):
            vpt.coords(16)
        with pytest.raises(TopologyError):
            vpt.coords(-1)

    def test_bad_coordinate_vector(self):
        vpt = VirtualProcessTopology((4, 4))
        with pytest.raises(TopologyError):
            vpt.rank_of((1,))
        with pytest.raises(TopologyError):
            vpt.rank_of((4, 0))

    def test_coords_array_rejects_out_of_range(self):
        vpt = VirtualProcessTopology((4, 4))
        with pytest.raises(TopologyError):
            vpt.coords_array(np.array([0, 16]))


class TestNeighborhood:
    def test_neighbor_count_per_dimension(self):
        vpt = VirtualProcessTopology((8, 4, 2))
        for r in (0, 13, 63):
            for d, k in enumerate(vpt.dim_sizes):
                assert len(vpt.neighbors(r, d)) == k - 1

    def test_neighbors_differ_in_exactly_one_dim(self):
        vpt = VirtualProcessTopology((4, 4, 4))
        r = 37
        for d in range(vpt.n):
            for nb in vpt.neighbors(r, d):
                assert vpt.hamming(r, nb) == 1
                assert vpt.neighbor_dim(r, nb) == d

    def test_neighborhood_is_symmetric(self):
        vpt = VirtualProcessTopology((4, 2, 4))
        for r in (0, 9, 21):
            for d in range(vpt.n):
                for nb in vpt.neighbors(r, d):
                    assert r in vpt.neighbors(nb, d)

    def test_group_contains_self_and_neighbors(self):
        vpt = VirtualProcessTopology((4, 4))
        g = vpt.group(5, 0)
        assert 5 in g
        assert set(vpt.neighbors(5, 0)) == set(g) - {5}

    def test_group_id_consistency(self):
        vpt = VirtualProcessTopology((4, 2, 8))
        for d in range(vpt.n):
            for r in vpt.ranks():
                gid = vpt.group_id(r, d)
                for other in vpt.group(r, d):
                    assert vpt.group_id(other, d) == gid

    def test_group_id_array_matches_scalar(self):
        vpt = VirtualProcessTopology((4, 2, 8))
        ranks = np.arange(vpt.K)
        for d in range(vpt.n):
            expected = np.array([vpt.group_id(r, d) for r in ranks])
            assert np.array_equal(vpt.group_id_array(ranks, d), expected)

    def test_num_groups(self):
        vpt = VirtualProcessTopology((8, 4, 2))
        assert vpt.num_groups(0) == 8
        assert vpt.num_groups(1) == 16
        assert vpt.num_groups(2) == 32

    def test_iter_groups_partitions_ranks(self):
        vpt = VirtualProcessTopology((4, 4))
        for d in range(vpt.n):
            groups = list(vpt.iter_groups(d))
            assert len(groups) == vpt.num_groups(d)
            flat = sorted(r for g in groups for r in g)
            assert flat == list(vpt.ranks())

    def test_flat_topology_everyone_is_neighbor(self):
        vpt = VirtualProcessTopology((8,))
        assert sorted(vpt.neighbors(3, 0)) == [0, 1, 2, 4, 5, 6, 7]

    def test_hypercube_one_neighbor_per_dim(self):
        vpt = VirtualProcessTopology((2, 2, 2, 2))
        for d in range(4):
            assert len(vpt.neighbors(0, d)) == 1

    def test_paper_figure2_example(self):
        # T3(4,4,4): the paper's P1=(3,2,3) with 1-based coords written
        # (P^3, P^2, P^1); our 0-based dims reverse to c=(2,1,2).
        vpt = VirtualProcessTopology((4, 4, 4))
        p1 = vpt.rank_of((2, 1, 2))
        p2 = vpt.rank_of((0, 1, 2))  # paper (3,2,1): differs in stage-1 dim
        p3 = vpt.rank_of((2, 1, 0))  # paper (1,2,3): differs in highest dim
        p4 = vpt.rank_of((2, 3, 2))  # paper (3,4,3): differs in middle dim
        assert vpt.neighbor_dim(p1, p2) == 0
        assert vpt.neighbor_dim(p1, p4) == 1
        assert vpt.neighbor_dim(p1, p3) == 2


class TestDistances:
    def test_hamming_zero_iff_same(self):
        vpt = VirtualProcessTopology((4, 4))
        assert vpt.hamming(7, 7) == 0
        assert vpt.hamming(7, 8) > 0

    def test_hamming_symmetric(self):
        vpt = VirtualProcessTopology((4, 2, 4))
        for i, j in [(0, 31), (5, 9), (12, 12)]:
            assert vpt.hamming(i, j) == vpt.hamming(j, i)

    def test_hamming_array_matches_scalar(self):
        vpt = VirtualProcessTopology((4, 4, 2))
        rng = np.random.default_rng(0)
        src = rng.integers(0, vpt.K, 100)
        dst = rng.integers(0, vpt.K, 100)
        expected = np.array([vpt.hamming(int(i), int(j)) for i, j in zip(src, dst)])
        assert np.array_equal(vpt.hamming_array(src, dst), expected)

    def test_first_diff_dim(self):
        vpt = VirtualProcessTopology((4, 4))
        # ranks 1 and 2 differ in digit 0
        assert vpt.first_diff_dim(1, 2) == 0
        # ranks 0 and 4 differ only in digit 1
        assert vpt.first_diff_dim(0, 4) == 1

    def test_first_diff_dim_same_rank_raises(self):
        vpt = VirtualProcessTopology((4, 4))
        with pytest.raises(TopologyError):
            vpt.first_diff_dim(3, 3)

    def test_first_diff_dim_array(self):
        vpt = VirtualProcessTopology((2, 4, 4))
        rng = np.random.default_rng(1)
        src = rng.integers(0, vpt.K, 64)
        dst = rng.integers(0, vpt.K, 64)
        out = vpt.first_diff_dim_array(src, dst)
        for i, j, d in zip(src, dst, out):
            if i == j:
                assert d == vpt.n
            else:
                assert d == vpt.first_diff_dim(int(i), int(j))
