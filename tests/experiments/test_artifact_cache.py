"""ArtifactCache — cached artifacts must be indistinguishable from fresh."""

import os

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cache import ArtifactCache, default_cache_root, pattern_digest
from repro.core import CommPattern, build_plan, make_vpt
from repro.experiments.config import quick_config
from repro.experiments.harness import InstanceCache
from repro.network.machines import BGQ
from repro.obs import Tracer
from repro.partition.base import Partition


def small_matrix():
    rng = np.random.default_rng(7)
    A = sp.random(40, 40, density=0.1, random_state=rng, format="csr")
    return (A + sp.eye(40)).tocsr()


def assert_matrices_equal(a, b):
    assert a.shape == b.shape
    assert (a != b).nnz == 0


class TestFetchOrBuild:
    def test_miss_then_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        calls = []

        def build():
            calls.append(1)
            return small_matrix()

        first = cache.matrix({"n": 40, "seed": 7}, build)
        second = cache.matrix({"n": 40, "seed": 7}, build)
        assert len(calls) == 1
        assert cache.misses == {"matrix": 1}
        assert cache.hits == {"matrix": 1}
        assert_matrices_equal(first, second)

    def test_each_kind_roundtrips(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        A = cache.matrix({"k": "m"}, small_matrix)
        part = cache.partition(
            {"k": "p"}, lambda: Partition(np.arange(40) % 4, 4)
        )
        pat = cache.pattern(
            {"k": "c"}, lambda: CommPattern.random(16, avg_degree=4, seed=3)
        )
        plan = cache.plan(
            {"k": "s"}, lambda: build_plan(pat, make_vpt(16, 2), header_words=1)
        )

        warm = ArtifactCache(tmp_path)
        assert_matrices_equal(warm.matrix({"k": "m"}, _fail), A)
        got_part = warm.partition({"k": "p"}, _fail)
        np.testing.assert_array_equal(got_part.parts, part.parts)
        got_pat = warm.pattern({"k": "c"}, _fail)
        np.testing.assert_array_equal(got_pat.src, pat.src)
        np.testing.assert_array_equal(got_pat.dst, pat.dst)
        np.testing.assert_array_equal(got_pat.size, pat.size)
        got_plan = warm.plan({"k": "s"}, _fail)
        assert got_plan.header_words == plan.header_words
        for sa, sb in zip(got_plan.stages, plan.stages):
            np.testing.assert_array_equal(sa.sender, sb.sender)
            np.testing.assert_array_equal(sa.total_words, sb.total_words)
        assert warm.misses == {}

    def test_key_depends_on_inputs(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.key("matrix", {"n": 1}) != cache.key("matrix", {"n": 2})
        assert cache.key("matrix", {"n": 1}) != cache.key("plan", {"n": 1})
        # numpy scalars canonicalize like python ints
        assert cache.key("matrix", {"n": np.int64(1)}) == cache.key(
            "matrix", {"n": 1}
        )

    def test_corrupt_entry_is_rebuilt(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        inputs = {"n": 40, "seed": 7}
        cache.matrix(inputs, small_matrix)
        path = cache.path("matrix", cache.key("matrix", inputs))
        with open(path, "wb") as fh:
            fh.write(b"not an npz at all")

        fresh = ArtifactCache(tmp_path)
        got = fresh.matrix(inputs, small_matrix)
        assert_matrices_equal(got, small_matrix())
        assert fresh.misses == {"matrix": 1}
        # and the rebuilt entry is valid again
        assert_matrices_equal(ArtifactCache(tmp_path).matrix(inputs, _fail), got)

    def test_tracer_counters(self, tmp_path):
        tracer = Tracer("t")
        cache = ArtifactCache(tmp_path, tracer=tracer)
        cache.matrix({"x": 1}, small_matrix)
        cache.matrix({"x": 1}, small_matrix)
        assert tracer.value("cache.misses", kind="matrix") == 1.0
        assert tracer.value("cache.hits", kind="matrix") == 1.0

    def test_stats_and_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.matrix({"x": 1}, small_matrix)
        cache.pattern({"y": 1}, lambda: CommPattern.random(8, avg_degree=2, seed=1))
        stats = cache.stats()
        assert stats.total_entries == 2
        assert stats.total_bytes > 0
        assert stats.hit_rate == 0.0
        assert cache.clear() == 2
        assert cache.stats().total_entries == 0


def _fail():  # a build hook that must not run on a warm cache
    raise AssertionError("cache missed when it should have hit")


class TestDefaultRoot:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/somewhere/else")
        assert default_cache_root() == "/somewhere/else"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache_root() == ".repro-cache"


class TestPatternDigest:
    def test_distinguishes_patterns(self):
        a = CommPattern.random(16, avg_degree=4, seed=1)
        b = CommPattern.random(16, avg_degree=4, seed=2)
        assert pattern_digest(a) != pattern_digest(b)
        assert pattern_digest(a) == pattern_digest(
            CommPattern.random(16, avg_degree=4, seed=1)
        )

    def test_edge_weights_are_part_of_identity(self):
        """Same edges, different sizes -> different digests."""
        a = CommPattern.from_arrays(4, [0, 1], [1, 2], [10, 20])
        b = CommPattern.from_arrays(4, [0, 1], [1, 2], [10, 21])
        assert pattern_digest(a) != pattern_digest(b)

    def test_dtype_is_part_of_identity(self):
        """Collision regression: an int32 array is byte-identical to a
        half-length int64 array; the digest frames each array with its
        dtype so the two patterns cannot share a key.  The public
        constructor normalizes to int64, but ``_trusted`` (the repair
        hot path) skips that."""
        src64 = np.array([0, 1], dtype=np.int64)
        dst64 = np.array([1, 2], dtype=np.int64)
        a = CommPattern._trusted(4, src64, dst64, np.array([3, 5], dtype=np.int64))
        b = CommPattern._trusted(4, src64, dst64, np.array([3, 0, 5, 0], dtype=np.int32))
        assert a.size.tobytes() == b.size.tobytes()  # the raw-bytes alias
        assert pattern_digest(a) != pattern_digest(b)

    def test_boundary_shift_cannot_collide(self):
        """Collision regression: the digest length-frames each array, so
        moving an element across the src/dst boundary changes the key
        even though the concatenated bytes are identical."""
        a = CommPattern._trusted(
            8,
            np.array([0, 1, 2], dtype=np.int64),
            np.array([3, 4], dtype=np.int64),
            np.array([1, 1], dtype=np.int64),
        )
        b = CommPattern._trusted(
            8,
            np.array([0, 1], dtype=np.int64),
            np.array([2, 3, 4], dtype=np.int64),
            np.array([1, 1], dtype=np.int64),
        )
        joined_a = a.src.tobytes() + a.dst.tobytes()
        joined_b = b.src.tobytes() + b.dst.tobytes()
        assert joined_a == joined_b  # the concatenation alias
        assert pattern_digest(a) != pattern_digest(b)

    def test_noncontiguous_arrays_digest_like_contiguous(self):
        strided = np.arange(8, dtype=np.int64)[::2]
        a = CommPattern._trusted(
            16, strided, strided + 1, np.ones(4, dtype=np.int64)
        )
        b = CommPattern._trusted(
            16,
            np.ascontiguousarray(strided),
            np.ascontiguousarray(strided + 1),
            np.ones(4, dtype=np.int64),
        )
        assert pattern_digest(a) == pattern_digest(b)


class TestDeltaDigest:
    def test_distinguishes_deltas(self):
        from repro.cache import delta_digest
        from repro.core import PatternDelta

        p = CommPattern.random(16, avg_degree=4, seed=0)
        a = PatternDelta.random(p, 0.2, seed=1)
        b = PatternDelta.random(p, 0.2, seed=2)
        assert delta_digest(a) != delta_digest(b)
        assert delta_digest(a) == delta_digest(PatternDelta.random(p, 0.2, seed=1))

    def test_reweight_only_deltas_differ(self):
        from repro.cache import delta_digest
        from repro.core import PatternDelta

        a = PatternDelta(8, reweight_src=[0], reweight_dst=[1], reweight_size=[5])
        b = PatternDelta(8, reweight_src=[0], reweight_dst=[1], reweight_size=[6])
        assert delta_digest(a) != delta_digest(b)

    def test_section_boundaries_framed(self):
        """An edge listed as a removal vs an addition must not collide."""
        from repro.cache import delta_digest
        from repro.core import PatternDelta

        a = PatternDelta(8, remove_src=[0], remove_dst=[1])
        b = PatternDelta(8, add_src=[0], add_dst=[1], add_size=[0])
        assert delta_digest(a) != delta_digest(b)


class TestDeltaKeyedPlans:
    def test_repair_chain_replays_from_cache(self, tmp_path):
        """The drift driver's delta-keyed plan reuse: a second run over
        the same (base pattern, delta chain) must hit for every epoch and
        return byte-identical plans."""
        from repro.cache import delta_digest
        from repro.core import PatternDelta, repair_plan

        pattern = CommPattern.random(16, avg_degree=4, seed=3)
        vpt = make_vpt(16, 2)
        base = pattern_digest(pattern)

        def chain(cache):
            plan = build_plan(pattern, vpt)
            digests = []
            out = []
            for epoch in range(3):
                delta = PatternDelta.random(plan.pattern, 0.25, seed=epoch)
                digests.append(delta_digest(delta))
                repaired = repair_plan(plan, delta)
                got = cache.plan(
                    {
                        "base_pattern": base,
                        "delta_chain": list(digests),
                        "dim_sizes": vpt.dim_sizes,
                    },
                    lambda: repaired,
                )
                out.append(got)
                plan = repaired
            return out

        cold = ArtifactCache(tmp_path)
        first = chain(cold)
        assert sum(cold.misses.values()) == 3

        warm = ArtifactCache(tmp_path)
        second = chain(warm)
        assert sum(warm.misses.values()) == 0
        assert sum(warm.hits.values()) == 3
        for p, q in zip(first, second):
            for a, b in zip(p.stages, q.stages):
                np.testing.assert_array_equal(a.sender, b.sender)
                np.testing.assert_array_equal(a.total_words, b.total_words)


class TestHarnessIntegration:
    def test_cached_cell_equals_fresh(self, tmp_path):
        cfg = quick_config()
        cold = InstanceCache(cfg, artifacts=ArtifactCache(tmp_path))
        a = cold.cell("cbuckle", 32, BGQ)

        warm = InstanceCache(cfg, artifacts=ArtifactCache(tmp_path))
        b = warm.cell("cbuckle", 32, BGQ)
        plain = InstanceCache(cfg).cell("cbuckle", 32, BGQ)

        for other in (b, plain):
            assert other.schemes == a.schemes
            for s in a.schemes:
                assert other.results[s].as_dict() == a.results[s].as_dict()
        # the warm pass rebuilt nothing
        assert warm.artifacts.misses == {}

    def test_disk_layout(self, tmp_path):
        cfg = quick_config()
        InstanceCache(cfg, artifacts=ArtifactCache(tmp_path)).cell(
            "cbuckle", 32, BGQ
        )
        kinds = sorted(
            d for d in os.listdir(tmp_path) if os.path.isdir(tmp_path / d)
        )
        assert kinds == ["matrix", "partition", "pattern", "plan"]
