"""repro.bench — schema validation, baseline comparison, quick run."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    CHAOS_SCHEMA,
    compare_bench,
    format_result,
    load_baseline,
    merge_baseline,
    run_bench,
    validate_bench_json,
)


def sample_doc(**overrides):
    doc = {
        "schema": BENCH_SCHEMA,
        "version": "1.0.0",
        "sweep": "quick",
        "quick": True,
        "n_cells": 2,
        "jobs": 4,
        "serial_cold_s": 2.0,
        "parallel_warm_s": 0.5,
        "speedup": 4.0,
        "cells_per_sec": 4.0,
        "engine": {"events": 6000, "elapsed_s": 0.1, "events_per_sec": 60000.0},
        "cache": {"hits": 20, "misses": 0, "hit_rate": 1.0},
    }
    doc.update(overrides)
    return doc


class TestValidate:
    def test_valid(self):
        assert validate_bench_json(sample_doc()) == []

    def test_missing_and_wrong_types(self):
        doc = sample_doc()
        del doc["speedup"]
        doc["n_cells"] = "two"
        problems = validate_bench_json(doc)
        assert any("speedup" in p for p in problems)
        assert any("n_cells" in p for p in problems)

    def test_wrong_schema_and_sweep(self):
        assert validate_bench_json(sample_doc(schema="nope"))
        assert validate_bench_json(sample_doc(sweep="hourly"))
        assert validate_bench_json([1, 2, 3])


class TestCompare:
    def test_no_regression(self):
        assert compare_bench(sample_doc(), sample_doc()) == []

    def test_improvement_passes(self):
        cur = sample_doc(speedup=8.0, cells_per_sec=9.0)
        assert compare_bench(cur, sample_doc()) == []

    def test_small_dip_within_tolerance(self):
        cur = sample_doc(speedup=3.5)
        assert compare_bench(cur, sample_doc()) == []

    def test_large_regression_fails(self):
        cur = sample_doc(speedup=2.0)
        lines = compare_bench(cur, sample_doc())
        assert len(lines) == 1 and "speedup" in lines[0]

    def test_engine_regression_fails(self):
        cur = sample_doc(
            engine={"events": 6000, "elapsed_s": 1.0, "events_per_sec": 6000.0}
        )
        assert any("engine" in l for l in compare_bench(cur, sample_doc()))

    def test_sweep_mismatch_is_an_error(self):
        assert compare_bench(sample_doc(sweep="full"), sample_doc())


def chaos_doc(**overrides):
    doc = {
        "schema": CHAOS_SCHEMA,
        "version": "1.0.0",
        "sweep": "chaos",
        "K": 64,
        "dims": 2,
        "degree": 4.0,
        "epochs": 40,
        "drift_rate": 0.08,
        "seed": 5,
        "warmup": 3,
        "tail": 5,
        "mean_completion_rate": 0.999,
        "min_completion_rate": 0.94,
        "faulty_epochs": 20,
        "degraded_epochs": 2,
        "mean_makespan_inflation": 12.0,
        "actions": {"healthy": 18, "reroute": 19, "shrink": 1, "degraded": 2},
        "repairs": 38,
        "full_rebuilds": 0,
        "side_table_checks": 38,
        "shrink_replans": 1,
        "payload_checks": 9000,
        "dead": [46],
        "breaker_trips": 3,
        "converged": True,
    }
    doc.update(overrides)
    return doc


class TestValidateChaos:
    def test_valid(self):
        assert validate_bench_json(chaos_doc()) == []

    def test_missing_and_wrong_types(self):
        doc = chaos_doc()
        del doc["full_rebuilds"]
        doc["converged"] = "yes"
        problems = validate_bench_json(doc)
        assert any("full_rebuilds" in p for p in problems)
        assert any("converged" in p for p in problems)

    def test_wrong_sweep(self):
        assert validate_bench_json(chaos_doc(sweep="drift"))

    def test_completion_rates_bounded(self):
        assert validate_bench_json(chaos_doc(mean_completion_rate=1.5))
        assert validate_bench_json(chaos_doc(min_completion_rate=-0.1))

    def test_actions_must_map_str_to_int(self):
        assert validate_bench_json(chaos_doc(actions={"healthy": 1.5}))


class TestCompareChaos:
    def test_identical_passes(self):
        assert compare_bench(chaos_doc(), chaos_doc()) == []

    def test_improvement_passes(self):
        cur = chaos_doc(mean_completion_rate=1.0, degraded_epochs=0)
        assert compare_bench(cur, chaos_doc()) == []

    def test_completion_regression_fails(self):
        cur = chaos_doc(mean_completion_rate=0.5)
        lines = compare_bench(cur, chaos_doc())
        assert any("mean_completion_rate" in l for l in lines)

    def test_lost_convergence_is_absolute(self):
        """No tolerance buys back a soak that stopped converging."""
        cur = chaos_doc(converged=False)
        lines = compare_bench(cur, chaos_doc())
        assert any("converged" in l for l in lines)

    def test_any_full_rebuild_fails(self):
        cur = chaos_doc(full_rebuilds=1)
        lines = compare_bench(cur, chaos_doc())
        assert any("full_rebuilds" in l for l in lines)

    def test_sweep_mismatch_is_an_error(self):
        assert compare_bench(chaos_doc(sweep="drift"), chaos_doc())


class TestBaselineFile:
    def test_merge_and_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_baseline.json")
        merge_baseline(path, sample_doc())
        merge_baseline(path, sample_doc(sweep="full", quick=False))
        merge_baseline(path, chaos_doc())
        with open(path) as fh:
            merged = json.load(fh)
        assert sorted(merged) == ["chaos", "full", "quick"]
        assert load_baseline(path, "quick")["sweep"] == "quick"
        assert load_baseline(path, "full")["sweep"] == "full"
        assert load_baseline(path, "chaos")["schema"] == CHAOS_SCHEMA

    def test_load_missing_sweep(self, tmp_path):
        path = str(tmp_path / "b.json")
        merge_baseline(path, sample_doc())
        with pytest.raises(ValueError):
            load_baseline(path, "full")

    def test_bare_document_accepted(self, tmp_path):
        path = str(tmp_path / "bare.json")
        with open(path, "w") as fh:
            json.dump(sample_doc(), fh)
        assert load_baseline(path, "quick")["schema"] == BENCH_SCHEMA


class TestQuickRun:
    def test_quick_bench_produces_valid_document(self, tmp_path):
        doc = run_bench(quick=True, jobs=2, cache_root=str(tmp_path / "c"))
        assert validate_bench_json(doc) == []
        assert doc["sweep"] == "quick"
        assert doc["cache"]["hit_rate"] == 1.0  # warm pass served from disk
        assert doc["speedup"] > 1.0  # warm cache must beat cold build
        assert "cells/s" in format_result(doc)
