"""repro.bench — schema validation, baseline comparison, quick run."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    compare_bench,
    format_result,
    load_baseline,
    merge_baseline,
    run_bench,
    validate_bench_json,
)


def sample_doc(**overrides):
    doc = {
        "schema": BENCH_SCHEMA,
        "version": "1.0.0",
        "sweep": "quick",
        "quick": True,
        "n_cells": 2,
        "jobs": 4,
        "serial_cold_s": 2.0,
        "parallel_warm_s": 0.5,
        "speedup": 4.0,
        "cells_per_sec": 4.0,
        "engine": {"events": 6000, "elapsed_s": 0.1, "events_per_sec": 60000.0},
        "cache": {"hits": 20, "misses": 0, "hit_rate": 1.0},
    }
    doc.update(overrides)
    return doc


class TestValidate:
    def test_valid(self):
        assert validate_bench_json(sample_doc()) == []

    def test_missing_and_wrong_types(self):
        doc = sample_doc()
        del doc["speedup"]
        doc["n_cells"] = "two"
        problems = validate_bench_json(doc)
        assert any("speedup" in p for p in problems)
        assert any("n_cells" in p for p in problems)

    def test_wrong_schema_and_sweep(self):
        assert validate_bench_json(sample_doc(schema="nope"))
        assert validate_bench_json(sample_doc(sweep="hourly"))
        assert validate_bench_json([1, 2, 3])


class TestCompare:
    def test_no_regression(self):
        assert compare_bench(sample_doc(), sample_doc()) == []

    def test_improvement_passes(self):
        cur = sample_doc(speedup=8.0, cells_per_sec=9.0)
        assert compare_bench(cur, sample_doc()) == []

    def test_small_dip_within_tolerance(self):
        cur = sample_doc(speedup=3.5)
        assert compare_bench(cur, sample_doc()) == []

    def test_large_regression_fails(self):
        cur = sample_doc(speedup=2.0)
        lines = compare_bench(cur, sample_doc())
        assert len(lines) == 1 and "speedup" in lines[0]

    def test_engine_regression_fails(self):
        cur = sample_doc(
            engine={"events": 6000, "elapsed_s": 1.0, "events_per_sec": 6000.0}
        )
        assert any("engine" in l for l in compare_bench(cur, sample_doc()))

    def test_sweep_mismatch_is_an_error(self):
        assert compare_bench(sample_doc(sweep="full"), sample_doc())


class TestBaselineFile:
    def test_merge_and_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_baseline.json")
        merge_baseline(path, sample_doc())
        merge_baseline(path, sample_doc(sweep="full", quick=False))
        with open(path) as fh:
            merged = json.load(fh)
        assert sorted(merged) == ["full", "quick"]
        assert load_baseline(path, "quick")["sweep"] == "quick"
        assert load_baseline(path, "full")["sweep"] == "full"

    def test_load_missing_sweep(self, tmp_path):
        path = str(tmp_path / "b.json")
        merge_baseline(path, sample_doc())
        with pytest.raises(ValueError):
            load_baseline(path, "full")

    def test_bare_document_accepted(self, tmp_path):
        path = str(tmp_path / "bare.json")
        with open(path, "w") as fh:
            json.dump(sample_doc(), fh)
        assert load_baseline(path, "quick")["schema"] == BENCH_SCHEMA


class TestQuickRun:
    def test_quick_bench_produces_valid_document(self, tmp_path):
        doc = run_bench(quick=True, jobs=2, cache_root=str(tmp_path / "c"))
        assert validate_bench_json(doc) == []
        assert doc["sweep"] == "quick"
        assert doc["cache"]["hit_rate"] == 1.0  # warm pass served from disk
        assert doc["speedup"] > 1.0  # warm cache must beat cold build
        assert "cells/s" in format_result(doc)
