"""Tests for the chaos soak harness (``repro.experiments.chaos``)."""

import pytest

from repro.bench import validate_bench_json
from repro.errors import ExperimentError
from repro.experiments import chaos


@pytest.fixture(scope="module")
def soak():
    """One small soak with the full fault script (shrink + breaker
    episodes both fit inside the 30-epoch turbulence window)."""
    return chaos.run(K=32, epochs=30, degree=3.0, seed=9)


class TestSoak:
    def test_converges_with_zero_rebuilds(self, soak):
        assert soak.converged
        assert soak.reference_identical
        assert soak.full_rebuilds == 0
        assert soak.repairs > 0

    def test_ladder_was_exercised(self, soak):
        actions = soak.overall.actions_dict
        assert actions.get("shrink", 0) >= 1
        assert soak.shrink_replans >= 1
        assert len(soak.dead) >= 1

    def test_every_repair_validated(self, soak):
        assert soak.side_table_checks == soak.repairs
        assert soak.payload_checks > 0

    def test_reports_cover_every_epoch(self, soak):
        assert len(soak.reports) == soak.epochs
        assert len(soak.labels) == soak.epochs
        assert [r.epoch for r in soak.reports] == list(
            range(1, soak.epochs + 1)
        )
        # exchange results are stripped to keep the record small
        assert all(r.result is None for r in soak.reports)

    def test_tail_is_fault_free_and_complete(self, soak):
        tail = soak.reports[soak.epochs - soak.tail :]
        assert all(r.missing == () for r in tail)
        assert all(
            lbl == "" for lbl in soak.labels[soak.epochs - soak.tail :]
        )

    def test_phases_partition_the_epochs(self, soak):
        names = [name for name, _ in soak.phases]
        assert names == ["warmup", "turbulence", "tail"]
        assert sum(st.epochs for _, st in soak.phases) == soak.epochs
        assert soak.overall.epochs == soak.epochs

    def test_bench_doc_validates(self, soak):
        doc = chaos.to_bench_doc(soak)
        validate_bench_json(doc)
        assert doc["sweep"] == "chaos"
        assert doc["converged"] is True
        assert doc["full_rebuilds"] == 0

    def test_format_result_mentions_the_verdict(self, soak):
        text = chaos.format_result(soak)
        assert "converged: yes" in text
        assert "full rebuilds: 0" in text
        assert "side-table" in text


class TestDeterminism:
    def test_same_seed_same_record(self):
        a = chaos.run(K=16, epochs=16, degree=3.0, seed=4)
        b = chaos.run(K=16, epochs=16, degree=3.0, seed=4)
        assert chaos.to_bench_doc(a) == chaos.to_bench_doc(b)
        assert [r.action for r in a.reports] == [
            r.action for r in b.reports
        ]
        assert a.makespan_us == b.makespan_us

    def test_different_seed_differs(self):
        a = chaos.run(K=16, epochs=16, degree=3.0, seed=4)
        b = chaos.run(K=16, epochs=16, degree=3.0, seed=5)
        assert chaos.to_bench_doc(a) != chaos.to_bench_doc(b)


class TestCorruptionSchedule:
    @pytest.fixture(scope="class")
    def corrupted(self):
        return chaos.run(K=32, epochs=30, degree=3.0, seed=9, corruption=True)

    def test_corruption_detected_and_converged(self, corrupted):
        assert corrupted.corruption
        assert corrupted.detected_corruptions > 0
        assert corrupted.converged
        assert corrupted.reference_identical
        assert corrupted.full_rebuilds == 0

    def test_corrupt_forwarder_quarantined(self, corrupted):
        assert corrupted.quarantine_epochs >= 1
        assert len(corrupted.quarantined_peers) >= 1

    def test_bench_doc_carries_integrity_fields(self, corrupted):
        doc = chaos.to_bench_doc(corrupted)
        validate_bench_json(doc)
        assert doc["corruption"] is True
        assert doc["detected_corruptions"] == corrupted.detected_corruptions
        assert doc["quarantined_peers"] == list(corrupted.quarantined_peers)

    def test_corruption_off_schedule_unchanged(self, soak):
        """The corruption knob must not perturb the corruption-off RNG
        stream: a plain soak still records zero integrity events."""
        assert not soak.corruption
        assert soak.detected_corruptions == 0
        assert soak.quarantine_epochs == 0
        assert soak.quarantined_peers == ()


class TestValidation:
    def test_too_few_epochs_rejected(self):
        with pytest.raises(ExperimentError, match="epochs"):
            chaos.run(K=16, epochs=9)

    @pytest.mark.parametrize("rate", [0.0, -0.01, 0.11, 0.5])
    def test_drift_rate_bounds(self, rate):
        with pytest.raises(ExperimentError, match="drift_rate"):
            chaos.run(K=16, epochs=16, drift_rate=rate)

    def test_tail_must_leave_room(self):
        with pytest.raises(ExperimentError, match="too short"):
            chaos.run(K=16, epochs=12, tail=10)
