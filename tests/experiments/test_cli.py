"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "figure1",
            "table2",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
            "table3",
            "figure10",
            "faults",
            "recover",
        }

    def test_parse_experiment_with_scale(self):
        args = build_parser().parse_args(["table2", "--scale", "0.5"])
        assert args.command == "table2"
        assert args.scale == 0.5

    def test_parse_report(self):
        args = build_parser().parse_args(["report", "-o", "out.md"])
        assert args.output == "out.md"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_partitioner_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--partitioner", "patoh"])

    def test_parse_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.command == "trace"
        assert args.target == "exchange"
        assert args.K == 64 and args.dims == 2

    def test_trace_is_not_an_experiment(self):
        # `trace` wraps experiments, it is not one itself
        assert "trace" not in EXPERIMENTS

    def test_trace_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "nonsense"])


class TestEngineFlags:
    """The shared ``--engine``/``--workers`` backend-selection flags."""

    @pytest.mark.parametrize(
        "cmd", [["run", "faults"], ["bench"], ["drift"], ["chaos"], ["corrupt"]]
    )
    def test_every_emulator_command_takes_the_flags(self, cmd):
        args = build_parser().parse_args(cmd + ["--engine", "sharded", "--workers", "4"])
        assert args.engine == "sharded"
        assert args.workers == 4

    def test_default_is_no_override(self):
        args = build_parser().parse_args(["drift"])
        assert args.engine is None and args.workers is None

    def test_unknown_engine_rejected_by_name(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--engine", "warp"])
        assert "invalid choice: 'warp'" in capsys.readouterr().err

    def test_non_positive_workers_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["drift", "--workers", "0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_workers_without_sharded_fails_eagerly(self):
        with pytest.raises(SystemExit, match="requires --engine sharded"):
            main(["drift", "--workers", "4"])

    def test_cost_model_experiments_reject_engine(self):
        with pytest.raises(SystemExit, match="analytic cost model"):
            main(["run", "figure8", "--engine", "sharded", "--workers", "2"])

    def test_bench_engine_sweep_rejects_engine_flag(self):
        with pytest.raises(SystemExit, match="every registered backend"):
            main(["bench", "--sweep", "engine", "--engine", "event"])


class TestCommands:
    def test_instances(self, capsys):
        assert main(["instances"]) == 0
        out = capsys.readouterr().out
        assert "gupta2" in out and "pattern1" in out

    def test_figure1_small(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.03")
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "pattern1" in out and "max=" in out

    def test_scale_override(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert main(["figure1", "--scale", "0.03", "--seed", "1"]) == 0
        assert "sparsine" in capsys.readouterr().out

    def test_trace_exchange(self, tmp_path, capsys):
        assert main(["trace", "--out", str(tmp_path), "--K", "16"]) == 0
        out = capsys.readouterr().out
        assert "traced msgs" in out and "stfw.stage_messages" in out

        from repro.obs import validate_chrome_trace

        doc = validate_chrome_trace((tmp_path / "exchange.trace.json").read_text())
        assert doc["traceEvents"]
        assert (tmp_path / "exchange.events.jsonl").read_text().strip()

    def test_report_to_file(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        # keep the report test fast: restrict to the two cheapest entries
        import repro.cli as cli

        full = dict(cli.EXPERIMENTS)
        monkeypatch.setattr(
            cli, "EXPERIMENTS", {"figure1": full["figure1"], "figure6": full["figure6"]}
        )
        out = tmp_path / "report.md"
        assert main(["report", "-o", str(out)]) == 0
        text = out.read_text()
        assert "## figure1" in text and "## figure6" in text
        assert "matrix scale: 0.02" in text


class TestDriftCommand:
    def test_parse_defaults(self):
        args = build_parser().parse_args(["drift"])
        assert args.command == "drift"
        assert args.output == "-"
        assert args.K is None and args.rates is None
        assert not args.no_validate and not args.no_service

    def test_parse_full_flags(self):
        args = build_parser().parse_args(
            ["drift", "--K", "64", "--degree", "6", "--rates", "0.05", "0.25",
             "--epochs", "2", "--cache", "--no-service", "-o", "b.json",
             "--check", "b.json"]
        )
        assert args.K == 64
        assert args.rates == [0.05, 0.25]
        assert args.cache == ""
        assert args.no_service

    def test_run_writes_and_gates(self, tmp_path, capsys):
        out = str(tmp_path / "baseline.json")
        rc = main(
            ["drift", "--K", "32", "--degree", "4", "--rates", "0.1",
             "--epochs", "1", "--no-service", "-o", out]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "Dynamic exchange under drift" in text
        # self-check against the baseline just written must pass; lower
        # the stored headline metric first so tiny-scale timing noise
        # cannot flip the 20% gate
        import json

        with open(out) as fh:
            doc = json.load(fh)
        doc["drift"]["median_speedup_le_10pct"] *= 0.01
        with open(out, "w") as fh:
            json.dump(doc, fh)
        rc = main(
            ["drift", "--K", "32", "--degree", "4", "--rates", "0.1",
             "--epochs", "1", "--no-service", "-o", "-", "--check", out]
        )
        assert rc == 0

    def test_check_missing_baseline_fails(self, tmp_path):
        rc = main(
            ["drift", "--K", "32", "--degree", "4", "--rates", "0.1",
             "--epochs", "1", "--no-service",
             "--check", str(tmp_path / "absent.json")]
        )
        assert rc == 1
