"""Unit tests for experiment configuration."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentConfig, default_config, quick_config


class TestExperimentConfig:
    def test_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.scale == 0.25
        assert cfg.partitioner == "rcm"

    def test_full(self):
        cfg = ExperimentConfig.full()
        assert cfg.scale == 1.0
        assert cfg.nnz_budget is None

    def test_with_scale(self):
        assert ExperimentConfig().with_scale(0.5).scale == 0.5

    def test_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(scale=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(min_rows_per_part=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(nnz_budget=10)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.4")
        assert default_config().scale == 0.4

    def test_env_bad_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ExperimentError):
            default_config()

    def test_quick_config_smaller(self):
        assert quick_config().scale < ExperimentConfig().scale
