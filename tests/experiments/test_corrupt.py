"""Tests for the silent-data-corruption sweep (``repro.experiments.corrupt``)."""

import pytest

from repro.bench import compare_bench, validate_bench_json
from repro.errors import ExperimentError
from repro.experiments import corrupt


@pytest.fixture(scope="module")
def sweep():
    """One small sweep exercising all three injection surfaces."""
    return corrupt.run(K=16, degree=3.0, epochs=12, seed=11)


class TestSweep:
    def test_zero_undetected_and_converged(self, sweep):
        assert sweep.undetected_total == 0
        assert sweep.converged
        assert sweep.payload_checks > 0

    def test_every_surface_detected_something(self, sweep):
        by_name = {ep.name.split("(")[0]: ep for ep in sweep.episodes}
        assert set(by_name) == {"transient", "forwarder", "compute"}
        for ep in by_name.values():
            assert ep.stats.detected > 0, ep.name
            assert ep.recovered, ep.name

    def test_forwarder_quarantined(self, sweep):
        assert len(sweep.quarantined) == 1
        assert sweep.detection_latency >= 0
        assert sweep.quarantine_latency >= sweep.detection_latency

    def test_abft_caught_every_injection(self, sweep):
        assert sweep.abft_injected > 0
        assert sweep.abft_caught == sweep.abft_injected

    def test_bench_doc_validates(self, sweep):
        doc = corrupt.to_bench_doc(sweep)
        validate_bench_json(doc)
        assert doc["sweep"] == "corruption"
        assert doc["undetected_total"] == 0
        assert doc["converged"] is True
        assert set(doc["episodes"]) == {ep.name for ep in sweep.episodes}

    def test_format_result_reports_pass(self, sweep):
        text = corrupt.format_result(sweep)
        assert "0 undetected corruption(s) (PASS: must be 0)" in text
        assert "converged: yes" in text
        assert "abft:" in text


class TestCompareGates:
    """The ``--check`` gates are absolute: no tolerance excuses them."""

    def test_clean_doc_passes_against_itself(self, sweep):
        doc = corrupt.to_bench_doc(sweep)
        assert compare_bench(doc, doc) == []

    def test_undetected_corruption_is_a_regression(self, sweep):
        base = corrupt.to_bench_doc(sweep)
        cur = dict(base, undetected_total=1)
        regs = compare_bench(cur, base)
        assert any("undetected" in r for r in regs)

    def test_abft_miss_is_a_regression(self, sweep):
        base = corrupt.to_bench_doc(sweep)
        cur = dict(base, abft_caught=base["abft_injected"] - 1)
        regs = compare_bench(cur, base)
        assert any("abft" in r for r in regs)

    def test_lost_convergence_is_a_regression(self, sweep):
        base = corrupt.to_bench_doc(sweep)
        cur = dict(base, converged=False)
        regs = compare_bench(cur, base)
        assert any("converged" in r for r in regs)

    def test_lost_quarantine_is_a_regression(self, sweep):
        base = corrupt.to_bench_doc(sweep)
        cur = dict(base, quarantined=[])
        regs = compare_bench(cur, base)
        assert any("quarantine" in r for r in regs)


class TestDeterminism:
    def test_same_seed_same_doc(self, sweep):
        again = corrupt.run(K=16, degree=3.0, epochs=12, seed=11)
        assert corrupt.to_bench_doc(again) == corrupt.to_bench_doc(sweep)

    def test_different_seed_differs(self, sweep):
        other = corrupt.run(K=16, degree=3.0, epochs=12, seed=12)
        assert corrupt.to_bench_doc(other) != corrupt.to_bench_doc(sweep)


class TestValidation:
    def test_too_few_epochs_rejected(self):
        with pytest.raises(ExperimentError, match="epochs"):
            corrupt.run(K=16, epochs=5)

    def test_too_small_K_rejected(self):
        with pytest.raises(ExperimentError, match="K >= 8"):
            corrupt.run(K=4, epochs=12)
