"""Tests for the dynamic-exchange drift experiment and its bench doc."""

import json

import numpy as np
import pytest

from repro.bench import (
    DRIFT_SCHEMA,
    compare_bench,
    load_baseline,
    merge_baseline,
    validate_bench_json,
)
from repro.cache import ArtifactCache
from repro.core import CommPattern, PatternDelta, build_plan, make_vpt, repair_plan
from repro.errors import ExperimentError
from repro.experiments import drift


def tiny_run(**overrides):
    kwargs = dict(
        K=32,
        degree=4,
        rates=(0.1, 0.25),
        epochs=2,
        service=False,
    )
    kwargs.update(overrides)
    return drift.run(**kwargs)


class TestPlansIdentical:
    def test_equal_plans(self):
        p = CommPattern.random(16, avg_degree=3, seed=0)
        vpt = make_vpt(16, 2)
        assert drift.plans_identical(build_plan(p, vpt), build_plan(p, vpt))

    def test_detects_value_difference(self):
        vpt = make_vpt(16, 2)
        a = build_plan(CommPattern.random(16, avg_degree=3, seed=0), vpt)
        b = build_plan(CommPattern.random(16, avg_degree=3, seed=1), vpt)
        assert not drift.plans_identical(a, b)

    def test_detects_header_difference(self):
        p = CommPattern.random(16, avg_degree=3, seed=0)
        vpt = make_vpt(16, 2)
        a = build_plan(p, vpt)
        b = build_plan(p, vpt, header_words=2)
        assert not drift.plans_identical(a, b)


class TestRun:
    def test_rows_and_validation(self):
        r = tiny_run()
        assert [row.rate for row in r.rows] == [0.1, 0.25]
        for row in r.rows:
            assert row.epochs == 2
            assert row.validated == 2  # every epoch cross-checked
            assert row.repair_ms > 0 and row.rebuild_ms > 0

    def test_deterministic_structure(self):
        a = tiny_run()
        b = tiny_run()
        assert a.num_messages == b.num_messages
        for ra, rb in zip(a.rows, b.rows):
            assert ra.validated == rb.validated

    def test_service_phase(self):
        r = drift.run(
            K=32,
            degree=4,
            rates=(0.1,),
            epochs=1,
            service=True,
            service_K=16,
            service_epochs=2,
        )
        s = r.service
        assert s is not None
        assert s.K == 16
        assert s.traces_matched == s.epochs == 2
        assert s.discovery_frames > 0
        assert s.makespan_us > 0

    def test_cache_reuse(self, tmp_path):
        first = tiny_run(artifacts=ArtifactCache(tmp_path))
        assert all(row.cache_misses > 0 for row in first.rows)
        second = tiny_run(artifacts=ArtifactCache(tmp_path))
        for row in second.rows:
            assert row.cache_misses == 0
            assert row.cache_hits == row.epochs

    def test_format_result(self):
        text = drift.format_result(tiny_run())
        assert "drift" in text
        assert "10%" in text and "25%" in text


class TestBenchDoc:
    def test_doc_validates(self):
        doc = drift.to_bench_doc(tiny_run())
        assert doc["schema"] == DRIFT_SCHEMA
        assert doc["sweep"] == "drift"
        assert validate_bench_json(doc) == []

    def test_headline_metric_is_low_rate_median(self):
        r = tiny_run(rates=(0.05, 0.1, 0.5))
        doc = drift.to_bench_doc(r)
        low = [row.speedup for row in r.rows if row.rate <= 0.10]
        assert doc["median_speedup_le_10pct"] == pytest.approx(float(np.median(low)))

    def test_validate_catches_missing_rows(self):
        doc = drift.to_bench_doc(tiny_run())
        del doc["rows"]
        assert any("rows" in p for p in validate_bench_json(doc))

    def test_validate_catches_wrong_sweep(self):
        doc = drift.to_bench_doc(tiny_run())
        doc["sweep"] = "full"
        assert any("sweep" in p for p in validate_bench_json(doc))

    def test_compare_gates_on_headline_metric(self):
        doc = drift.to_bench_doc(tiny_run())
        baseline = dict(doc)
        baseline["median_speedup_le_10pct"] = doc["median_speedup_le_10pct"] * 10
        regressions = compare_bench(doc, baseline)
        assert regressions and "median_speedup_le_10pct" in regressions[0]
        assert compare_bench(doc, doc) == []

    def test_merge_coexists_with_bench_sweeps(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        other = {"full": {"sweep": "full"}, "quick": {"sweep": "quick"}}
        with open(path, "w") as fh:
            json.dump(other, fh)
        doc = drift.to_bench_doc(tiny_run())
        merged = merge_baseline(path, doc)
        assert sorted(merged) == ["drift", "full", "quick"]
        assert load_baseline(path, "drift")["schema"] == DRIFT_SCHEMA


class TestValidationFailure:
    def test_divergence_raises(self, monkeypatch):
        """A repair that disagrees with the rebuild must abort the run."""

        def bad_repair(plan, delta, **kwargs):
            rebuilt = build_plan(
                plan.pattern.apply_delta(delta),
                plan.vpt,
                header_words=plan.header_words + 1,  # wrong on purpose
            )
            return rebuilt

        monkeypatch.setattr(drift, "repair_plan", bad_repair)
        with pytest.raises(ExperimentError):
            tiny_run(rates=(0.1,), epochs=1)


class TestRepairSpeedupDirection:
    def test_repair_beats_rebuild_at_scale(self):
        """At a bench-like size, low-rate repair must be faster than the
        full rebuild (the BENCH gate asserts >=5x at K=4096; here a
        smaller, CI-friendly instance just pins the direction)."""
        import time

        pattern = CommPattern.random(512, avg_degree=24, seed=0)
        vpt = make_vpt(512, 2)
        plan = build_plan(pattern, vpt)
        delta = PatternDelta.random(pattern, 0.02, seed=1)
        t0 = time.perf_counter()
        repair_plan(plan, delta)
        t_repair = time.perf_counter() - t0
        t0 = time.perf_counter()
        build_plan(pattern.apply_delta(delta), vpt)
        t_rebuild = time.perf_counter() - t0
        assert t_repair < t_rebuild
