"""Shape tests for every table/figure module (small scale, fast).

These assert the *findings* each paper artifact carries, not absolute
numbers: message-count reductions, volume increases, time orderings,
cross-network and cross-dimension relationships.
"""

import math

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    InstanceCache,
    figure1,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table2,
    table3,
)
from repro.network import BGQ, CRAY_XC40, CRAY_XK7

CFG = ExperimentConfig(scale=0.05, nnz_budget=400_000)


@pytest.fixture(scope="module")
def cache():
    return InstanceCache(CFG)


class TestFigure1:
    def test_hotspots_stand_out(self, cache):
        rows = figure1.run(CFG, K=128, cache=cache)
        by_name = {r.name: r for r in rows}
        # pattern1 and pkustk04 are the paper's dense-row exemplars
        assert by_name["pattern1"].irregularity > 2.5
        assert by_name["pkustk04"].irregularity > 2.5

    def test_counts_cover_all_processes(self, cache):
        rows = figure1.run(CFG, K=128, cache=cache)
        for r in rows:
            assert r.counts.shape == (128,)
            assert r.mmax == r.counts.max()

    def test_format_contains_lines(self, cache):
        text = figure1.format_result(figure1.run(CFG, K=128, cache=cache))
        assert "max=" in text and "avg=" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def cells(self, cache):
        return table2.run(CFG, k_values=(64, 128), cache=cache)

    def rows_for(self, cells, K):
        return {c.scheme: c.metrics for c in cells if c.K == K}

    def test_all_schemes_present(self, cells):
        rows = self.rows_for(cells, 64)
        assert set(rows) == {"BL", "STFW2", "STFW3", "STFW4", "STFW5", "STFW6"}

    def test_mmax_monotone_in_dimension(self, cells):
        rows = self.rows_for(cells, 64)
        seq = [rows[s]["mmax"] for s in ("BL", "STFW2", "STFW3", "STFW4", "STFW5", "STFW6")]
        assert all(a >= b for a, b in zip(seq, seq[1:]))

    def test_vavg_grows_with_dimension(self, cells):
        rows = self.rows_for(cells, 64)
        assert rows["STFW6"]["vavg"] > rows["STFW2"]["vavg"] > rows["BL"]["vavg"]

    def test_stfw_improves_comm_time(self, cells):
        for K in (64, 128):
            rows = self.rows_for(cells, K)
            best = min(v["comm"] for s, v in rows.items() if s != "BL")
            assert best < rows["BL"]["comm"]

    def test_improvement_grows_with_K(self, cells):
        # the paper: STFW gets better with more processes
        r64 = self.rows_for(cells, 64)
        r128 = self.rows_for(cells, 128)
        gain64 = r64["BL"]["comm"] / min(v["comm"] for s, v in r64.items() if s != "BL")
        gain128 = r128["BL"]["comm"] / min(v["comm"] for s, v in r128.items() if s != "BL")
        assert gain128 > gain64

    def test_buffer_less_than_twice_bl(self, cells):
        rows = self.rows_for(cells, 64)
        for s, v in rows.items():
            if s != "BL":
                assert v["buffer_kb"] < 2.2 * rows["BL"]["buffer_kb"]

    def test_format(self, cells):
        text = table2.format_result(cells)
        assert "STFW2" in text and "mmax" in text


class TestFigure6:
    def test_normalization_convention(self, cache):
        norm = figure6.run(CFG, K=64, cache=cache)
        assert norm["BL"] == {k: 1.0 for k in norm["BL"]}
        for s, m in norm.items():
            if s == "BL":
                continue
            assert m["mmax"] < 1.0  # STFW always improves message counts
            assert m["vavg"] > 1.0  # and always pays volume

    def test_format(self, cache):
        text = figure6.format_result(figure6.run(CFG, K=64, cache=cache))
        assert "normalized" in text


class TestFigure7:
    def test_panels(self, cache):
        panels = figure7.run(CFG, K=64, cache=cache)
        assert [p.metric for p in panels] == ["vavg", "mavg", "mmax", "total"]
        for p in panels:
            assert set(p.values) == {"GaAsH6", "coAuthorsDBLP"}
            for series in p.values.values():
                assert len(series) == len(p.schemes)

    def test_format(self, cache):
        text = figure7.format_result(figure7.run(CFG, K=64, cache=cache))
        assert "GaAsH6" in text


class TestFigure8:
    @pytest.fixture(scope="class")
    def series(self, cache):
        return figure8.run(
            CFG,
            matrices=("gupta2", "sparsine"),
            k_values=(32, 64, 128),
            scheme_dims=(1, 2, 4, 6),
            cache=cache,
        )

    def test_missing_points_are_nan(self, series):
        s = series[0]
        # STFW6 needs K >= 64: absent at K=32
        assert math.isnan(s.times["STFW6"][0])
        assert not math.isnan(s.times["STFW6"][1])

    def test_latency_bound_instance_scales_better_with_stfw(self, series):
        gupta = next(s for s in series if s.name == "gupta2")
        assert gupta.speedup_at(128, "STFW4") > 1.0

    def test_format(self, series):
        text = figure8.format_result(series)
        assert "gupta2" in text and "K=128" in text


class TestFigure9:
    @pytest.fixture(scope="class")
    def blocks(self, cache):
        return figure9.run(
            CFG, matrices=("gupta2", "pattern1", "GaAsH6"), k_values=(128,), cache=cache
        )

    def test_both_networks_present(self, blocks):
        assert set(blocks[0].comm_us) == {BGQ.name, CRAY_XC40.name}

    def test_stfw_improves_both_networks(self, blocks):
        b = blocks[0]
        for machine in b.comm_us:
            best = min(
                b.improvement(machine, s) for s in b.schemes if s != "BL"
            )
            best_gain = max(
                b.improvement(machine, s) for s in b.schemes if s != "BL"
            )
            assert best_gain > 1.0
            del best

    def test_xc40_gains_more(self, blocks):
        b = blocks[0]
        gain = lambda m: max(b.improvement(m, s) for s in b.schemes if s != "BL")
        assert gain(CRAY_XC40.name) > gain(BGQ.name)

    def test_format(self, blocks):
        assert "128 processes" in figure9.format_result(blocks)


class TestTable3:
    @pytest.fixture(scope="class")
    def blocks(self, cache):
        # reduced instance set and K values, same structure
        return table3.run(
            CFG,
            matrices=("human_gene2", "mip1", "TSOPF_FS_b300_c3"),
            runs=((CRAY_XK7, 512), (CRAY_XK7, 1024), (CRAY_XC40, 512)),
            cache=cache,
        )

    def test_blocks_shape(self, blocks):
        assert [(b.machine, b.K) for b in blocks] == [
            (CRAY_XK7.name, 512),
            (CRAY_XK7.name, 1024),
            (CRAY_XC40.name, 512),
        ]

    def test_drastic_improvement(self, blocks):
        for b in blocks:
            assert b.improvement(b.best_scheme()) > 2.0

    def test_bl_degrades_faster_with_K(self, blocks):
        xk7_small, xk7_big = blocks[0], blocks[1]
        bl_growth = xk7_big.rows["BL"]["comm"] / xk7_small.rows["BL"]["comm"]
        s4_growth = xk7_big.rows["STFW4"]["comm"] / xk7_small.rows["STFW4"]["comm"]
        assert bl_growth > s4_growth

    def test_format(self, blocks):
        text = table3.format_result(blocks)
        assert "best:" in text


class TestFigure10:
    def test_rows(self, cache):
        rows = figure10.run(
            CFG, matrices=("human_gene2", "mip1"), K=1024, cache=cache
        )
        assert len(rows) == 2
        for r in rows:
            assert r.best_improvement > 1.0
            assert r.bl_comm_us > 0
            assert np.isfinite(list(r.stfw_comm_us.values())).all()

    def test_format(self, cache):
        rows = figure10.run(CFG, matrices=("mip1",), K=1024, cache=cache)
        text = figure10.format_result(rows)
        assert "mip1" in text and "gain" in text


class TestFaults:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import faults

        return faults.run(CFG, K=16, drop_rates=(0.0, 0.05))

    def test_row_structure(self, result):
        from repro.experiments import faults

        # 2 drop rates x 2 schemes + crash scenario x 3 schemes
        assert len(result.rows) == 2 * 2 + 3
        schemes = {s.scheme for _, s in result.rows}
        assert schemes == {"BL-FT", "STFW-FT", "STFW"}
        assert result.K == 16

    def test_fault_tolerant_schemes_complete_clean_sweep(self, result):
        for scenario, s in result.rows:
            if scenario == "drop 0%":
                assert s.completion_rate == 1.0
                assert s.makespan_inflation == 1.0

    def test_crash_strands_plain_stfw_only(self, result):
        crash_rows = {
            s.scheme: s for scenario, s in result.rows if scenario.startswith("crash")
        }
        assert not crash_rows["STFW"].completed
        assert crash_rows["STFW"].stranded
        assert crash_rows["STFW-FT"].completed
        assert crash_rows["STFW-FT"].completion_rate == 1.0

    def test_format(self, result):
        from repro.experiments import faults

        text = faults.format_result(result)
        assert "Resilience" in text
        assert "STFW-FT" in text and "deadlock" in text
