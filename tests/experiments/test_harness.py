"""Unit tests for the experiment harness (cache, specs, dim selection)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentConfig, InstanceCache, effective_spec, paper_dim_selection


CFG = ExperimentConfig(scale=0.05, nnz_budget=500_000)


class TestEffectiveSpec:
    def test_scale_applied(self):
        s = effective_spec("cbuckle", 64, CFG)
        assert s.n == pytest.approx(13681 * 0.05, rel=0.02)

    def test_upscale_for_large_K(self):
        # human_gene2 has 14340 rows; at 16K processes with
        # min_rows_per_part=2 it must grow to >= 32768 rows
        s = effective_spec("human_gene2", 16384, CFG)
        assert s.n >= 2 * 16384

    def test_nnz_budget_caps_avg_degree(self):
        cfg = ExperimentConfig(scale=1.0, nnz_budget=1_000_000)
        s = effective_spec("human_gene2", 64, cfg)
        assert s.nnz <= 1_100_000
        assert s.n == 14340  # rows untouched by the budget

    def test_unknown_instance(self):
        with pytest.raises(ExperimentError):
            effective_spec("bogus", 64, CFG)


class TestInstanceCache:
    def test_matrix_cached(self):
        cache = InstanceCache(CFG)
        a = cache.matrix("cbuckle", 64)
        b = cache.matrix("cbuckle", 64)
        assert a is b

    def test_same_effective_spec_shares_matrix(self):
        cache = InstanceCache(CFG)
        # different K but same effective spec -> same generated matrix
        a = cache.matrix("cbuckle", 32)
        b = cache.matrix("cbuckle", 64)
        assert a is b

    def test_partition_per_K(self):
        cache = InstanceCache(CFG)
        p32 = cache.partition("cbuckle", 32)
        p64 = cache.partition("cbuckle", 64)
        assert p32.K == 32 and p64.K == 64

    def test_pattern_matches_partition(self):
        cache = InstanceCache(CFG)
        pat = cache.pattern("sparsine", 64)
        assert pat.K == 64

    def test_cell_runs_all_schemes(self):
        from repro.network import BGQ

        cache = InstanceCache(CFG)
        exp = cache.cell("sparsine", 32, BGQ)
        assert exp.schemes == ["BL", "STFW2", "STFW3", "STFW4", "STFW5"]

    def test_block_partitioner_config(self):
        cache = InstanceCache(ExperimentConfig(scale=0.05, partitioner="block"))
        p = cache.partition("cbuckle", 16)
        assert (p.parts[:-1] <= p.parts[1:]).all()  # contiguous blocks


class TestPaperDimSelection:
    def test_16k(self):
        # lg2(16384) = 14 -> {2,3,4} + {8,9} + {13,14}
        assert paper_dim_selection(16384) == [2, 3, 4, 8, 9, 13, 14]

    def test_8k(self):
        # lg2(8192) = 13 -> {2,3,4} + {7,8} + {12,13}
        assert paper_dim_selection(8192) == [2, 3, 4, 7, 8, 12, 13]

    def test_4k(self):
        # lg2(4096) = 12 -> {2,3,4} + {7,8} + {11,12}
        assert paper_dim_selection(4096) == [2, 3, 4, 7, 8, 11, 12]

    def test_small_K_dedupes(self):
        dims = paper_dim_selection(64)
        assert dims == sorted(set(dims))
        assert all(2 <= d <= 6 for d in dims)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ExperimentError):
            paper_dim_selection(1000)
