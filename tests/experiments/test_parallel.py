"""repro.parallel — executor semantics: order, errors, tracer merging."""

import pytest

from repro.errors import ExperimentError
from repro.obs import Tracer
from repro.parallel import parallel_map, resolve_jobs, worker_state


def _square(task, tracer=None):
    if tracer is not None:
        tracer.count("squared", 1)
    return task * task


def _traced(task, tracer=None):
    tracer.count("calls", 1, parity=task % 2)
    with tracer.span(f"task.{task}", track="host"):
        pass
    return task


class TestResolveJobs:
    def test_positive_passthrough(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(1) == 1

    def test_all_cores_sentinels(self):
        for sentinel in (None, 0, -1):
            assert resolve_jobs(sentinel) >= 1

    def test_invalid(self):
        with pytest.raises(ExperimentError):
            resolve_jobs(-2)


class TestParallelMap:
    def test_preserves_order_serial_and_parallel(self):
        tasks = list(range(10))
        want = [t * t for t in tasks]
        assert parallel_map(_square, tasks) == want
        assert parallel_map(_square, tasks, jobs=3) == want

    def test_empty_and_singleton(self):
        assert parallel_map(_square, []) == []
        assert parallel_map(_square, [4], jobs=8) == [16]

    def test_tracer_counters_merge_without_double_counting(self):
        serial = Tracer("serial")
        parallel_map(_traced, list(range(6)), jobs=1, tracer=serial)
        merged = Tracer("merged")
        parallel_map(_traced, list(range(6)), jobs=3, tracer=merged)
        assert serial.counter_rows() == merged.counter_rows()
        assert merged.value("calls", parity=0) == 3.0
        assert merged.value("calls", parity=1) == 3.0

    def test_tracer_spans_merge_in_task_order(self):
        merged = Tracer("merged")
        parallel_map(_traced, list(range(6)), jobs=2, tracer=merged)
        assert [s.name for s in merged.spans] == [f"task.{i}" for i in range(6)]


class TestWorkerState:
    def test_memoizes_by_key(self):
        calls = []

        def factory():
            calls.append(1)
            return object()

        a = worker_state(("t", 1), factory)
        b = worker_state(("t", 1), factory)
        c = worker_state(("t", 2), factory)
        assert a is b
        assert a is not c
        assert len(calls) == 2
