"""Serial vs parallel experiment execution must be byte-identical.

The executor's contract (ISSUE: parallel determinism) is that ``jobs``
is invisible in every output: scheme metrics, rendered tables, fault
rows under an injected :class:`FaultPlan`, and merged tracer counters.
"""

import dataclasses

from repro.experiments import faults, recover, table2
from repro.experiments.config import quick_config
from repro.experiments.harness import InstanceCache
from repro.network.machines import BGQ
from repro.obs import Tracer

MATRICES = ("cbuckle", "nd3k")
K = 32


def cell_rows(exp):
    """One cell's collect_stats-backed metric table, fully expanded."""
    return {s: exp.results[s].as_dict() for s in exp.schemes}


class TestCellDeterminism:
    def test_serial_vs_parallel_cells(self):
        cfg = quick_config()
        requests = [(name, K, BGQ) for name in MATRICES]
        serial = InstanceCache(cfg).cells(requests, jobs=1)
        parallel = InstanceCache(cfg).cells(requests, jobs=4)
        assert [e.name for e in parallel] == [e.name for e in serial]
        for a, b in zip(serial, parallel):
            assert cell_rows(a) == cell_rows(b)

    def test_table2_rendering_identical(self):
        cfg = quick_config()
        serial = table2.run(cfg, matrices=MATRICES, k_values=(K,), jobs=1)
        parallel = table2.run(cfg, matrices=MATRICES, k_values=(K,), jobs=4)
        assert table2.format_result(parallel) == table2.format_result(serial)


class TestFaultDeterminism:
    def test_faults_rows_identical_under_fault_plans(self):
        cfg = quick_config()
        serial = faults.run(cfg)
        parallel = faults.run(cfg, jobs=4)
        assert serial.crash_rank == parallel.crash_rank
        assert serial.crash_time_us == parallel.crash_time_us
        assert [
            (s, dataclasses.astuple(r)) for s, r in serial.rows
        ] == [(s, dataclasses.astuple(r)) for s, r in parallel.rows]
        assert faults.format_result(serial) == faults.format_result(parallel)

    def test_recover_rows_identical(self):
        cfg = quick_config()
        kwargs = dict(iterations=8, checkpoint_interval=4)
        serial = recover.run(cfg, **kwargs)
        parallel = recover.run(cfg, jobs=4, **kwargs)
        assert recover.format_result(serial) == recover.format_result(parallel)
        assert serial.plans == parallel.plans


class TestTracedCounterEquality:
    def test_faults_counters_merge_exactly(self):
        # every engine/stfw/reliable counter accumulated by the workers
        # must merge to exactly the serial totals — no double counting,
        # no lost increments
        cfg = quick_config()
        t_serial = Tracer("serial")
        faults.run(cfg, tracer=t_serial)
        t_parallel = Tracer("parallel")
        faults.run(cfg, jobs=2, tracer=t_parallel)
        assert t_serial.counter_rows() == t_parallel.counter_rows()
