"""Unit tests for the SVG chart renderer."""

import math
import xml.etree.ElementTree as ET

import pytest

from repro.errors import ExperimentError
from repro.viz import experiment_svgs, svg_bar_chart, svg_line_chart

NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestLineChart:
    def test_valid_document(self):
        svg = svg_line_chart(
            {"a": ([1, 2, 3], [10.0, 20.0, 15.0])},
            title="demo",
            xlabel="x",
            ylabel="y",
        )
        root = parse(svg)
        assert root.tag == f"{NS}svg"
        assert len(root.findall(f".//{NS}polyline")) == 1
        texts = [t.text for t in root.findall(f".//{NS}text")]
        assert "demo" in texts

    def test_nan_breaks_line(self):
        svg = svg_line_chart(
            {"a": ([1, 2, 3, 4], [1.0, float("nan"), 3.0, 4.0])}
        )
        root = parse(svg)
        # two segments: before and after the gap
        assert len(root.findall(f".//{NS}polyline")) == 2

    def test_multi_series_colored(self):
        svg = svg_line_chart(
            {
                "a": ([1, 2], [1.0, 2.0]),
                "b": ([1, 2], [2.0, 3.0]),
            }
        )
        root = parse(svg)
        strokes = {p.get("stroke") for p in root.findall(f".//{NS}polyline")}
        assert len(strokes) == 2

    def test_log_axes(self):
        svg = svg_line_chart(
            {"a": ([32, 64, 128, 256], [1000.0, 500.0, 300.0, 200.0])},
            log_x=True,
            log_y=True,
        )
        parse(svg)  # must be valid

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            svg_line_chart({"a": ([], [])})


class TestBarChart:
    def test_valid_document(self):
        svg = svg_bar_chart(
            ["g1", "g2"],
            {"s1": [1.0, 2.0], "s2": [3.0, 4.0]},
            title="bars",
            ylabel="v",
        )
        root = parse(svg)
        # background + frame + 4 bars + legend swatches
        bars = [
            r for r in root.findall(f".//{NS}rect")
            if r.find(f"{NS}title") is not None
        ]
        assert len(bars) == 4

    def test_nan_bars_skipped(self):
        svg = svg_bar_chart(["g"], {"s": [float("nan")], "t": [1.0]})
        root = parse(svg)
        bars = [
            r for r in root.findall(f".//{NS}rect")
            if r.find(f"{NS}title") is not None
        ]
        assert len(bars) == 1

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            svg_bar_chart([], {})


class TestExperimentAdapters:
    def test_figure1(self):
        from repro.experiments import ExperimentConfig, figure1

        rows = figure1.run(ExperimentConfig(scale=0.03), K=64)
        out = experiment_svgs("figure1", rows)
        assert set(out) == {
            "figure1_pattern1.svg",
            "figure1_pkustk04.svg",
            "figure1_sparsine.svg",
        }
        for doc in out.values():
            parse(doc)

    def test_figure8(self):
        from repro.experiments import ExperimentConfig, figure8

        series = figure8.run(
            ExperimentConfig(scale=0.03),
            matrices=("sparsine",),
            k_values=(32, 64),
            scheme_dims=(1, 2, 6),
        )
        out = experiment_svgs("figure8", series)
        parse(out["figure8_sparsine.svg"])

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            experiment_svgs("table2", [])

    def test_ticks_sane(self):
        from repro.viz import _nice_ticks

        ticks = _nice_ticks(0, 97)
        assert ticks[0] <= 0 and ticks[-1] >= 97
        assert all(b > a for a, b in zip(ticks, ticks[1:]))
        assert not any(math.isnan(t) for t in ticks)
