"""Smoke tests: the fast example scripts must run to completion.

The heavyweight examples (spmv_scaling, network_comparison,
custom_application, iterative_solver, dimension_advisor) are exercised
manually / in benchmarks; the three below finish in seconds and guard
the public API surfaces the README points at.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: int = 120) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestFastExamples:
    def test_paper_walkthrough(self):
        out = run_example("paper_walkthrough.py")
        assert "Figure 2" in out and "Figure 4" in out and "Figure 5" in out
        assert "Pc received from: Pa, Pb" in out

    def test_emulated_exchange(self):
        out = run_example("emulated_exchange.py")
        assert "physical messages the plan" in out
        assert "matches the sequential" in out

    def test_quickstart(self):
        out = run_example("quickstart.py", timeout=240)
        assert "BL" in out and "STFW8" in out
        assert "trade-off" in out

    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "spmv_scaling.py",
            "network_comparison.py",
            "emulated_exchange.py",
            "custom_application.py",
            "vpt_mapping.py",
            "iterative_solver.py",
            "paper_walkthrough.py",
            "dimension_advisor.py",
            "render_charts.py",
        ],
    )
    def test_example_exists_and_compiles(self, name):
        path = EXAMPLES / name
        assert path.exists(), name
        compile(path.read_text(), str(path), "exec")
