"""Integration tests: the full pipeline, matrix to delivered vector."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    apply_mapping,
    build_direct_plan,
    build_plan,
    locality_vpt_mapping,
    make_vpt,
)
from repro.matrices import degree_stats, generate_instance, spec
from repro.network import BGQ, CRAY_XC40, time_plan
from repro.partition import rcm_partition
from repro.spmv import distributed_spmv, run_spmv_schemes, spmv_pattern


@pytest.fixture(scope="module")
def gupta_small():
    return generate_instance("gupta2", scale=0.03, seed=11)


class TestEndToEnd:
    def test_matrix_to_verified_spmv_bl_and_stfw(self, gupta_small):
        A = gupta_small
        n = A.shape[0]
        x = np.random.default_rng(0).normal(size=n)
        part = rcm_partition(A, 16)
        y_bl = distributed_spmv(A, part, x).y
        y_stfw = distributed_spmv(A, part, x, vpt=make_vpt(16, 4)).y
        assert np.allclose(y_bl, sp.csr_matrix(A) @ x)
        assert np.allclose(y_stfw, y_bl)

    def test_generated_instance_is_irregular(self, gupta_small):
        st = degree_stats(gupta_small)
        target = spec("gupta2").scaled(0.03)
        assert st.max_degree > 5 * st.avg_degree
        assert st.n == target.n

    def test_pattern_metrics_flow_into_driver(self, gupta_small):
        A = gupta_small
        part = rcm_partition(A, 32)
        pattern = spmv_pattern(A, part)
        exp = run_spmv_schemes(A, 32, BGQ, partition=part, pattern=pattern)
        assert exp["BL"].stats.mmax == pattern.stats().mmax

    def test_full_chain_with_mapping_extension(self, gupta_small):
        A = gupta_small
        part = rcm_partition(A, 32)
        pattern = spmv_pattern(A, part)
        scrambled = apply_mapping(
            pattern, np.random.default_rng(1).permutation(32).astype(np.int64)
        )
        mapped = apply_mapping(scrambled, locality_vpt_mapping(scrambled))
        vpt = make_vpt(32, 5)
        assert build_plan(mapped, vpt).total_volume <= build_plan(
            scrambled, vpt
        ).total_volume

    def test_timing_consistency_across_paths(self, gupta_small):
        # driver comm time == time_plan of the same plan
        A = gupta_small
        part = rcm_partition(A, 32)
        pattern = spmv_pattern(A, part)
        exp = run_spmv_schemes(A, 32, BGQ, dims=[3], partition=part, pattern=pattern)
        direct = time_plan(build_plan(pattern, make_vpt(32, 3)), BGQ).total_us
        assert exp["STFW3"].stats.comm_time_us == pytest.approx(direct)

    def test_bl_plan_equals_pattern_on_both_machines(self, gupta_small):
        A = gupta_small
        part = rcm_partition(A, 16)
        pattern = spmv_pattern(A, part)
        plan = build_direct_plan(pattern)
        t1 = time_plan(plan, BGQ).total_us
        t2 = time_plan(plan, CRAY_XC40).total_us
        assert t1 > 0 and t2 > 0 and t1 != t2

    def test_deterministic_pipeline(self, gupta_small):
        A = generate_instance("gupta2", scale=0.03, seed=11)
        assert (A != gupta_small).nnz == 0
        p1 = rcm_partition(A, 16)
        p2 = rcm_partition(gupta_small, 16)
        assert p1 == p2
