"""Unit tests for the Table 1 calibration module."""

import pytest

from repro.errors import MatrixGenerationError
from repro.matrices import calibrate_instance, calibrate_suite, format_calibration


class TestCalibrateInstance:
    def test_basic(self):
        row = calibrate_instance("cbuckle", scale=0.1)
        assert row.name == "cbuckle"
        assert 0.5 < row.nnz_ratio < 1.5
        assert row.max_achieved == row.max_target  # topped up exactly

    def test_ratios(self):
        row = calibrate_instance("gupta2", scale=0.1)
        assert row.nnz_ratio == pytest.approx(row.nnz_achieved / row.nnz_target)
        assert row.max_ratio == pytest.approx(1.0, abs=0.2)
        assert row.hotspot_ratio > 0.5

    def test_deterministic(self):
        a = calibrate_instance("net125", scale=0.1)
        b = calibrate_instance("net125", scale=0.1)
        assert a == b


class TestCalibrateSuite:
    def test_subset(self):
        rows = calibrate_suite(scale=0.05, names=("cbuckle", "sparsine"))
        assert [r.name for r in rows] == ["cbuckle", "sparsine"]

    def test_bad_scale(self):
        with pytest.raises(MatrixGenerationError):
            calibrate_suite(scale=0)

    def test_format(self):
        rows = calibrate_suite(scale=0.05, names=("cbuckle",))
        text = format_calibration(rows)
        assert "cbuckle" in text and "hot got" in text
