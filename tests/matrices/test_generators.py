"""Unit tests for synthetic matrix generation."""

import numpy as np
import pytest

from repro.errors import MatrixGenerationError
from repro.matrices import (
    configuration_matrix,
    degree_stats,
    generate_matrix,
    is_structurally_symmetric,
    lognormal_degree_sequence,
)


class TestDegreeSequence:
    def test_mean_on_target(self):
        rng = np.random.default_rng(0)
        deg = lognormal_degree_sequence(10_000, 20.0, 1.0, 500, rng=rng)
        assert deg.mean() == pytest.approx(20.0, rel=0.05)

    def test_max_pinned(self):
        rng = np.random.default_rng(1)
        deg = lognormal_degree_sequence(5000, 10.0, 2.0, 400, rng=rng, dense_rows=3)
        assert deg.max() == 400
        assert (deg[:3] == 400).all()

    def test_cv_approximates_target(self):
        # (cv, max) pairs must be self-consistent: pinning one row at
        # `max` alone contributes sqrt((max-avg)^2/n)/avg to the cv, so
        # the max is chosen (like in the real Table 1 rows) not to
        # exceed the target on its own
        rng = np.random.default_rng(2)
        for cv, max_degree in ((0.3, 300), (1.0, 2000), (2.5, 5000)):
            deg = lognormal_degree_sequence(
                50_000, 30.0, cv, max_degree, rng=rng, dense_rows=0
            )
            achieved = deg.std() / deg.mean()
            assert achieved == pytest.approx(cv, rel=0.35), f"cv target {cv}"

    def test_low_cv_nearly_uniform(self):
        rng = np.random.default_rng(3)
        deg = lognormal_degree_sequence(1000, 50.0, 0.0, 100, rng=rng, dense_rows=0)
        assert deg.std() / deg.mean() < 0.05

    def test_always_at_least_one_max_row(self):
        rng = np.random.default_rng(4)
        deg = lognormal_degree_sequence(1000, 5.0, 0.5, 200, rng=rng, dense_rows=0)
        assert deg.max() == 200

    def test_bounds_respected(self):
        rng = np.random.default_rng(5)
        deg = lognormal_degree_sequence(2000, 8.0, 3.0, 150, rng=rng)
        assert deg.min() >= 1 and deg.max() <= 150

    def test_invalid_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(MatrixGenerationError):
            lognormal_degree_sequence(1, 5.0, 1.0, 10, rng=rng)
        with pytest.raises(MatrixGenerationError):
            lognormal_degree_sequence(100, 0.5, 1.0, 10, rng=rng)
        with pytest.raises(MatrixGenerationError):
            lognormal_degree_sequence(100, 5.0, 1.0, 200, rng=rng)
        with pytest.raises(MatrixGenerationError):
            lognormal_degree_sequence(100, 50.0, 1.0, 20, rng=rng)


class TestConfigurationMatrix:
    def test_symmetric_with_diagonal(self):
        rng = np.random.default_rng(0)
        deg = np.full(500, 6)
        A = configuration_matrix(deg, rng=rng)
        assert is_structurally_symmetric(A)
        assert (A.diagonal() != 0).all()

    def test_degrees_approximate_target(self):
        rng = np.random.default_rng(1)
        deg = np.full(2000, 10)
        A = configuration_matrix(deg, rng=rng)
        achieved = np.diff(A.indptr) - 1  # exclude diagonal
        assert achieved.mean() == pytest.approx(10, rel=0.15)

    def test_locality_reduces_bandwidth(self):
        rng = np.random.default_rng(2)
        deg = np.full(2000, 8)
        local = configuration_matrix(deg, locality=0.99, rng=np.random.default_rng(2))
        globl = configuration_matrix(deg, locality=0.0, rng=rng)

        def mean_band(A):
            coo = A.tocoo()
            return np.abs(coo.row - coo.col).mean()

        assert mean_band(local) < mean_band(globl) / 5

    def test_locality_out_of_range(self):
        rng = np.random.default_rng(0)
        with pytest.raises(MatrixGenerationError):
            configuration_matrix(np.full(10, 2), locality=1.5, rng=rng)

    def test_zero_degrees_gives_identity(self):
        rng = np.random.default_rng(0)
        A = configuration_matrix(np.zeros(10, dtype=np.int64), rng=rng)
        assert A.nnz == 10

    def test_too_small(self):
        rng = np.random.default_rng(0)
        with pytest.raises(MatrixGenerationError):
            configuration_matrix(np.array([2]), rng=rng)


class TestGenerateMatrix:
    def test_stats_near_targets(self):
        A = generate_matrix(20_000, 400_000, 2000, 2.0, dense_rows=2, seed=7)
        st = degree_stats(A)
        assert st.n == 20_000
        assert st.nnz == pytest.approx(400_000, rel=0.25)
        assert st.max_degree == pytest.approx(2000, rel=0.1)
        assert st.cv == pytest.approx(2.0, rel=0.4)

    def test_reproducible(self):
        A = generate_matrix(1000, 10_000, 100, 1.0, seed=3)
        B = generate_matrix(1000, 10_000, 100, 1.0, seed=3)
        assert (A != B).nnz == 0

    def test_different_seeds_differ(self):
        A = generate_matrix(1000, 10_000, 100, 1.0, seed=3)
        B = generate_matrix(1000, 10_000, 100, 1.0, seed=4)
        assert (A != B).nnz > 0

    def test_symmetric_pattern(self):
        A = generate_matrix(2000, 30_000, 500, 1.5, seed=0)
        assert is_structurally_symmetric(A)

    def test_random_values(self):
        A = generate_matrix(500, 5000, 50, 0.5, seed=1, values="random")
        offdiag = A.data[A.data != 1.0]
        assert offdiag.size > 0

    def test_unknown_values_mode(self):
        with pytest.raises(MatrixGenerationError):
            generate_matrix(500, 5000, 50, 0.5, seed=1, values="bogus")

    def test_nnz_below_n_rejected(self):
        with pytest.raises(MatrixGenerationError):
            generate_matrix(1000, 500, 50, 0.5)

    def test_dense_row_is_latency_hotspot(self):
        # the structural property the whole paper rests on: a dense row
        # makes one row's degree far above the mean
        A = generate_matrix(5000, 50_000, 2500, 3.0, dense_rows=1, seed=2)
        st = degree_stats(A)
        assert st.max_degree > 20 * st.avg_degree
