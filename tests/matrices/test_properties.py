"""Property-based tests for the matrix generators."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrices import (
    configuration_matrix,
    degree_stats,
    generate_matrix,
    is_structurally_symmetric,
    lognormal_degree_sequence,
)


@st.composite
def gen_params(draw):
    n = draw(st.integers(64, 600))
    avg = draw(st.floats(2.0, 12.0))
    nnz = int(n * avg)
    cv = draw(st.floats(0.1, 3.0))
    max_degree = draw(st.integers(int(avg * 2) + 4, max(n // 2, int(avg * 2) + 5)))
    locality = draw(st.floats(0.0, 0.99))
    dense = draw(st.integers(0, 3))
    seed = draw(st.integers(0, 100))
    return n, nnz, max_degree, cv, locality, dense, seed


class TestGeneratorInvariants:
    @given(gen_params())
    @settings(max_examples=25, deadline=None)
    def test_always_symmetric_with_full_diagonal(self, params):
        n, nnz, max_degree, cv, locality, dense, seed = params
        A = generate_matrix(
            n, nnz, max_degree, cv, locality=locality, dense_rows=dense, seed=seed
        )
        assert A.shape == (n, n)
        assert is_structurally_symmetric(A)
        assert (A.diagonal() != 0).all()

    @given(gen_params())
    @settings(max_examples=25, deadline=None)
    def test_degrees_within_bounds(self, params):
        n, nnz, max_degree, cv, locality, dense, seed = params
        A = generate_matrix(
            n, nnz, max_degree, cv, locality=locality, dense_rows=dense, seed=seed
        )
        st_ = degree_stats(A)
        assert st_.max_degree <= max(max_degree, 1) + 1
        assert st_.nnz >= n  # at least the diagonal

    @given(gen_params())
    @settings(max_examples=15, deadline=None)
    def test_deterministic(self, params):
        n, nnz, max_degree, cv, locality, dense, seed = params
        A = generate_matrix(
            n, nnz, max_degree, cv, locality=locality, dense_rows=dense, seed=seed
        )
        B = generate_matrix(
            n, nnz, max_degree, cv, locality=locality, dense_rows=dense, seed=seed
        )
        assert (A != B).nnz == 0

    @given(st.integers(32, 300), st.integers(2, 10), st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_configuration_matrix_degree_conservation(self, n, deg, seed):
        rng = np.random.default_rng(seed)
        A = configuration_matrix(np.full(n, deg), rng=rng)
        achieved = np.diff(sp.csr_matrix(A).indptr) - 1
        # dedupe only removes edges: achieved <= requested (+/- parity)
        assert achieved.max() <= deg + 1
        assert achieved.sum() <= n * deg

    @given(st.integers(64, 400), st.floats(0.2, 3.0), st.integers(0, 30))
    @settings(max_examples=20, deadline=None)
    def test_degree_sequence_bounds(self, n, cv, seed):
        rng = np.random.default_rng(seed)
        avg = 8.0
        max_degree = n // 2
        deg = lognormal_degree_sequence(n, avg, cv, max_degree, rng=rng)
        assert deg.min() >= 1
        assert deg.max() <= max_degree
        assert deg.max() == max_degree  # pinned
