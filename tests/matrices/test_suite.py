"""Unit tests for the Table 1 registry and instance generation."""

import pytest

from repro.errors import MatrixGenerationError
from repro.matrices import BOTTOM10, SUITE, TOP15, degree_stats, generate_instance, spec


class TestRegistry:
    def test_all_22_instances(self):
        assert len(SUITE) == 22

    def test_top15_is_papers_top_block(self):
        assert len(TOP15) == 15
        assert TOP15[0] == "cbuckle"
        assert TOP15[-1] == "coPapersCiteseer"

    def test_bottom10_is_over_10M_nnz(self):
        assert len(BOTTOM10) == 10
        assert all(SUITE[name].nnz > 10_000_000 for name in BOTTOM10)
        assert "mip1" in BOTTOM10 and "Si02" in BOTTOM10

    def test_table1_values_spotcheck(self):
        g = spec("gupta2")
        assert (g.n, g.nnz, g.max_degree) == (62064, 4248286, 8413)
        assert g.cv == pytest.approx(5.20)
        t = spec("TSOPF_FS_b300_c2")
        assert t.maxdr == pytest.approx(0.488)

    def test_maxdr_consistent_with_max_and_n(self):
        for s in SUITE.values():
            assert s.max_degree / s.n == pytest.approx(s.maxdr, abs=0.002)

    def test_unknown_name(self):
        with pytest.raises(MatrixGenerationError):
            spec("not_a_matrix")


class TestScaling:
    def test_scale_preserves_relative_quantities(self):
        s = spec("pattern1").scaled(0.25)
        full = spec("pattern1")
        assert s.n == pytest.approx(full.n * 0.25, rel=0.01)
        # communication-preserving scaling: avg degree scales with n
        assert s.nnz / s.n == pytest.approx(0.25 * full.nnz / full.n, rel=0.05)
        assert s.max_degree / s.n == pytest.approx(full.maxdr, rel=0.05)
        assert s.cv == full.cv

    def test_tiny_scale_floors_avg_degree(self):
        s = spec("coPapersCiteseer").scaled(0.01)
        assert s.nnz / s.n >= 5.9  # floored, not degenerate

    def test_upscale_allowed(self):
        s = spec("human_gene2").scaled(2.0)
        assert s.n == pytest.approx(2 * 14340, rel=0.01)
        assert s.maxdr == spec("human_gene2").maxdr

    def test_scale_one_is_identity(self):
        assert spec("cbuckle").scaled(1.0) is spec("cbuckle")

    def test_bad_scale(self):
        with pytest.raises(MatrixGenerationError):
            spec("cbuckle").scaled(0.0)
        with pytest.raises(MatrixGenerationError):
            spec("cbuckle").scaled(100.0)


class TestGeneration:
    @pytest.mark.parametrize("name", ["sparsine", "gupta2", "coAuthorsDBLP"])
    def test_small_scale_stats(self, name):
        s = spec(name).scaled(0.1)
        A = generate_instance(name, scale=0.1)
        st = degree_stats(A)
        assert st.n == s.n
        assert st.nnz == pytest.approx(s.nnz, rel=0.35)
        assert st.max_degree == pytest.approx(s.max_degree, rel=0.15)

    def test_default_seed_stable(self):
        A = generate_instance("net125", scale=0.05)
        B = generate_instance("net125", scale=0.05)
        assert (A != B).nnz == 0

    def test_irregular_instance_has_hotspot(self):
        A = generate_instance("TSOPF_FS_b300_c2", scale=0.05)
        st = degree_stats(A)
        assert st.max_degree > 10 * st.avg_degree
