"""Unit tests for metric collection."""

import math

import pytest

from repro.core import CommPattern, build_direct_plan, build_plan, make_vpt
from repro.errors import MetricsError
from repro.metrics import CommStats, collect_stats
from repro.metrics.collect import WORD_BYTES, scheme_name


class TestSchemeName:
    def test_naming(self):
        assert scheme_name(1) == "BL"
        assert scheme_name(2) == "STFW2"
        assert scheme_name(9) == "STFW9"


class TestCollectStats:
    def test_direct_plan_stats(self):
        p = CommPattern.all_to_all(8, words=4)
        stats = collect_stats(build_direct_plan(p))
        assert stats.scheme == "BL"
        assert stats.K == 8
        assert stats.mmax == 7
        assert stats.mavg == 7.0
        assert stats.vavg == 28.0
        # all-to-all: every process sends and receives 7*4 words
        assert stats.buffer_words == 56

    def test_stfw_scheme_label(self):
        p = CommPattern.all_to_all(16)
        stats = collect_stats(build_plan(p, make_vpt(16, 4)))
        assert stats.scheme == "STFW4"

    def test_explicit_canonical_label(self):
        p = CommPattern.all_to_all(8)
        stats = collect_stats(build_direct_plan(p), scheme="STFW3")
        assert stats.scheme == "STFW3"

    @pytest.mark.parametrize("bad", ["custom", "bl", "STFW", "STFW1", "STFWx", ""])
    def test_non_canonical_label_rejected(self, bad):
        p = CommPattern.all_to_all(8)
        with pytest.raises(MetricsError, match=repr(bad)):
            collect_stats(build_direct_plan(p), scheme=bad)

    def test_times_default_nan(self):
        p = CommPattern.all_to_all(8)
        stats = collect_stats(build_direct_plan(p))
        assert math.isnan(stats.comm_time_us)
        assert math.isnan(stats.total_time_us)

    def test_buffer_kb_conversion(self):
        stats = CommStats(
            scheme="BL", K=4, mmax=1, mavg=1.0, vmax=128, vavg=1.0, buffer_words=128
        )
        assert stats.buffer_kb == pytest.approx(128 * WORD_BYTES / 1024)

    def test_as_dict_keys(self):
        p = CommPattern.all_to_all(8)
        d = collect_stats(build_direct_plan(p)).as_dict()
        assert set(d) == {
            "scheme", "K", "mmax", "mavg", "vmax", "vavg", "comm", "total", "buffer_kb"
        }

    def test_stfw_reduces_mmax_on_irregular_pattern(self):
        p = CommPattern.random(128, avg_degree=4, hot_processes=3, seed=0, words=16)
        bl = collect_stats(build_direct_plan(p))
        stfw = collect_stats(build_plan(p, make_vpt(128, 4)))
        assert stfw.mmax < bl.mmax
        assert stfw.vavg >= bl.vavg
