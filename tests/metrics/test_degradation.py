"""Tests for the degradation accounting (``repro.metrics.resilience``)."""

from dataclasses import dataclass, field

from repro.metrics import (
    DegradationStats,
    degradation_stats,
    degradation_table,
)


@dataclass
class FakeReport:
    """Duck-typed stand-in for a service EpochReport."""

    epoch: int
    action: str
    completion_rate: float
    makespan_us: float
    missing: tuple = field(default_factory=tuple)


class TestDegradationStats:
    def test_empty_is_neutral(self):
        st = degradation_stats([])
        assert st.epochs == 0
        assert st.mean_completion_rate == 1.0
        assert st.min_completion_rate == 1.0
        assert st.mean_makespan_inflation == 1.0
        assert st.actions == ()

    def test_all_healthy(self):
        reports = [
            FakeReport(e, "healthy", 1.0, 50.0) for e in range(1, 4)
        ]
        st = degradation_stats(reports)
        assert st.epochs == 3
        assert st.faulty_epochs == 0
        assert st.degraded_epochs == 0
        assert st.mean_completion_rate == 1.0
        assert st.actions_dict == {"healthy": 3}
        # no faulty epochs -> inflation has no numerator
        assert st.mean_makespan_inflation == 1.0

    def test_mixed_ladder_accounting(self):
        reports = [
            FakeReport(1, "healthy", 1.0, 50.0),
            FakeReport(2, "reroute", 1.0, 150.0),
            FakeReport(3, "degraded", 0.8, 250.0, missing=((0, 1), (2, 3))),
            FakeReport(4, "shrink", 1.0, 200.0),
        ]
        st = degradation_stats(reports)
        assert st.epochs == 4
        assert st.faulty_epochs == 3  # everything but healthy
        assert st.degraded_epochs == 1
        assert st.missing_pairs == 2
        assert st.min_completion_rate == 0.8
        assert st.worst_epoch == 3
        assert st.mean_completion_rate == (1.0 + 1.0 + 0.8 + 1.0) / 4
        # faulty mean 200 over healthy mean 50
        assert st.mean_makespan_inflation == 4.0
        assert st.actions_dict == {
            "healthy": 1,
            "reroute": 1,
            "degraded": 1,
            "shrink": 1,
        }

    def test_worst_epoch_is_the_first_minimum(self):
        reports = [
            FakeReport(1, "degraded", 0.7, 10.0, missing=((0, 1),)),
            FakeReport(2, "degraded", 0.7, 10.0, missing=((0, 1),)),
        ]
        assert degradation_stats(reports).worst_epoch == 1


class TestDegradationTable:
    def rows(self):
        st = degradation_stats(
            [
                FakeReport(1, "healthy", 1.0, 50.0),
                FakeReport(2, "degraded", 0.9, 100.0, missing=((4, 7),)),
            ]
        )
        return [("warmup", st), ("overall", st)]

    def test_renders_phases_and_headline_columns(self):
        text = degradation_table(self.rows())
        assert "warmup" in text and "overall" in text
        assert "completion" in text
        assert "degraded:1" in text and "healthy:1" in text
        assert "95.00%" in text  # mean of 1.0 and 0.9

    def test_custom_title(self):
        text = degradation_table(self.rows(), title="soak phases")
        assert "soak phases" in text

    def test_stats_are_frozen(self):
        st = degradation_stats([])
        assert isinstance(st, DegradationStats)
        try:
            st.epochs = 5
        except AttributeError:
            return
        raise AssertionError("DegradationStats must be immutable")
