"""Unit tests for report helpers (geometric means, tables, normalization)."""

import math

import pytest

from repro.metrics import Table, format_table, geometric_mean, geometric_mean_rows, normalize_to


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([5]) == pytest.approx(5.0)

    def test_invariance_under_scaling(self):
        vals = [1.5, 2.5, 10.0]
        assert geometric_mean([3 * v for v in vals]) == pytest.approx(
            3 * geometric_mean(vals)
        )

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([-2.0])

    def test_rows(self):
        rows = [{"a": 2.0, "b": 3.0}, {"a": 8.0, "b": 27.0}]
        gm = geometric_mean_rows(rows, ["a", "b"])
        assert gm["a"] == pytest.approx(4.0)
        assert gm["b"] == pytest.approx(9.0)

    def test_rows_missing_key_raises(self):
        with pytest.raises(KeyError):
            geometric_mean_rows([{"a": 1.0}], ["a", "b"])


class TestNormalizeTo:
    def test_figure6_convention(self):
        rows = {
            "BL": {"mmax": 100.0, "vavg": 10.0},
            "STFW4": {"mmax": 10.0, "vavg": 25.0},
        }
        norm = normalize_to(rows, "BL", ["mmax", "vavg"])
        assert norm["BL"] == {"mmax": 1.0, "vavg": 1.0}
        assert norm["STFW4"]["mmax"] == pytest.approx(0.1)  # 10x better than BL
        assert norm["STFW4"]["vavg"] == pytest.approx(2.5)  # 2.5x worse than BL

    def test_missing_baseline(self):
        with pytest.raises(KeyError):
            normalize_to({"a": {"x": 1.0}}, "BL", ["x"])


class TestTable:
    def test_add_and_render(self):
        t = Table(columns=("scheme", "mmax"), title="demo")
        t.add_row("BL", 44.3)
        t.add_row("STFW2", 13.3)
        text = t.render()
        assert "demo" in text
        assert "BL" in text and "44.3" in text
        assert "STFW2" in text and "13.3" in text

    def test_row_arity_checked(self):
        t = Table(columns=("a", "b"))
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_nan_renders_as_dash(self):
        text = format_table(["x"], [[math.nan]])
        assert "-" in text.splitlines()[-1]

    def test_alignment_consistent(self):
        text = format_table(["col"], [["a"], ["longer"]])
        lines = text.splitlines()
        assert len(set(len(line) for line in lines)) == 1

    def test_float_format_override(self):
        text = format_table(["v"], [[3.14159]], float_fmt="{:.3f}")
        assert "3.142" in text
