"""Unit tests for the link-level congestion model."""

import numpy as np
import pytest

from repro.core import CommPattern, build_direct_plan, build_plan, make_vpt
from repro.errors import NetworkModelError
from repro.network import (
    BGQ,
    CRAY_XC40,
    DragonflyTopology,
    TorusTopology,
    congestion_summary,
    dragonfly_route_links,
    link_loads,
    time_plan,
    time_plan_links,
    torus_route_links,
)


class TestTorusRouting:
    def test_self_route_empty(self):
        t = TorusTopology((4, 4))
        assert torus_route_links(t, 5, 5) == []

    def test_route_length_is_hop_count(self):
        t = TorusTopology((4, 4, 4))
        rng = np.random.default_rng(0)
        for _ in range(50):
            a, b = (int(x) for x in rng.integers(0, t.num_nodes, 2))
            assert len(torus_route_links(t, a, b)) == t.hops(a, b)

    def test_route_takes_short_way_around(self):
        t = TorusTopology((8,))
        links = torus_route_links(t, 0, 7)
        assert links == [(0, 0, -1)]  # the wrap link, not 7 forward steps

    def test_route_is_connected(self):
        t = TorusTopology((4, 4))
        links = torus_route_links(t, 0, 15)
        # consecutive links leave the node the previous one arrived at
        node = 0
        for ln_node, dim, step in links:
            assert ln_node == node
            coords = list(t.coords(node))
            coords[dim] = (coords[dim] + step) % t.dims[dim]
            node = coords[0] + coords[1] * t.dims[0]
        assert node == 15

    def test_dimension_order(self):
        t = TorusTopology((4, 4))
        dims_seen = [dim for _, dim, _ in torus_route_links(t, 0, 15)]
        assert dims_seen == sorted(dims_seen)

    def test_bad_node(self):
        t = TorusTopology((4,))
        with pytest.raises(NetworkModelError):
            torus_route_links(t, 0, 4)


class TestDragonflyRouting:
    def test_self_route_empty(self):
        t = DragonflyTopology(2, 2, 2)
        assert dragonfly_route_links(t, 3, 3) == []

    def test_same_router(self):
        t = DragonflyTopology(2, 2, 2)
        links = dragonfly_route_links(t, 0, 1)
        assert links == [("t", 0), ("t", 1)]

    def test_same_group(self):
        t = DragonflyTopology(2, 2, 2)
        links = dragonfly_route_links(t, 0, 2)
        assert ("l", 0, 1) in links

    def test_cross_group_uses_global_link(self):
        t = DragonflyTopology(2, 2, 2)
        links = dragonfly_route_links(t, 0, 7)
        assert ("g", 0, 1) in links

    def test_bad_node(self):
        t = DragonflyTopology(1, 1, 2)
        with pytest.raises(NetworkModelError):
            dragonfly_route_links(t, 0, 5)


class TestLinkLoads:
    def test_on_node_traffic_is_free(self):
        # ranks 0 and 1 share node 0 on BGQ: no link load
        p = CommPattern.from_arrays(32, [0], [1], [100])
        plan = build_direct_plan(p)
        topo = BGQ.topology(32)
        mapping = np.zeros(32, dtype=np.int64)
        assert link_loads(plan.stages[0], topo, mapping) == {}

    def test_loads_accumulate(self):
        t = TorusTopology((4,))
        p = CommPattern.from_arrays(4, [0, 1], [2, 2], [10, 20])
        plan = build_direct_plan(p)
        mapping = np.arange(4, dtype=np.int64)
        loads = link_loads(plan.stages[0], t, mapping)
        # 0->2 passes link (1,0,+1); 1->2 uses it too
        assert loads[(1, 0, 1)] == 30

    def test_congestion_summary_shape(self):
        p = CommPattern.random(64, avg_degree=6, seed=1, words=10)
        plan = build_plan(p, make_vpt(64, 3))
        summary = congestion_summary(plan, BGQ)
        assert len(summary) == 3
        for s in summary:
            assert s.max_load >= s.mean_load >= 0
            if s.mean_load:
                assert s.imbalance >= 1.0


class TestTimePlanLinks:
    def test_at_least_port_model(self):
        p = CommPattern.random(64, avg_degree=8, hot_processes=2, seed=3, words=500)
        plan = build_plan(p, make_vpt(64, 2))
        port = time_plan(plan, BGQ).total_us
        linked = time_plan_links(plan, BGQ).total_us
        assert linked >= port

    def test_congestion_binds_on_funneled_traffic(self):
        # all 16 off-node ranks hammer rank 0's node: its terminal/torus
        # links must carry everything, so the link model exceeds the
        # port model's receive time only if drain > port; at minimum it
        # cannot be lower
        K = 64
        src = np.arange(16, 32, dtype=np.int64)
        dst = np.zeros(16, dtype=np.int64)
        p = CommPattern.from_arrays(K, src, dst, np.full(16, 10_000))
        plan = build_direct_plan(p)
        linked = time_plan_links(plan, BGQ)
        port = time_plan(plan, BGQ)
        assert linked.total_us >= port.total_us

    def test_dragonfly_supported(self):
        p = CommPattern.random(128, avg_degree=4, seed=5, words=50)
        plan = build_plan(p, make_vpt(128, 3))
        t = time_plan_links(plan, CRAY_XC40)
        assert t.total_us > 0

    def test_empty_plan(self):
        p = CommPattern.from_arrays(32, [], [], [])
        t = time_plan_links(build_direct_plan(p), BGQ)
        assert t.total_us == 0.0
