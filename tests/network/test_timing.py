"""Unit tests for plan timing, machine presets and mappings."""

import numpy as np
import pytest

from repro.core import CommPattern, build_direct_plan, build_plan, make_vpt
from repro.errors import NetworkModelError
from repro.network import (
    BGQ,
    CRAY_XC40,
    CRAY_XK7,
    MACHINES,
    block_mapping,
    random_mapping,
    round_robin_mapping,
    spmv_compute_time,
    time_plan,
    validate_mapping,
)


class TestMappings:
    def test_block(self):
        m = block_mapping(8, 4)
        assert list(m) == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_round_robin(self):
        m = round_robin_mapping(8, 4)
        assert list(m) == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_random_is_balanced(self):
        m = random_mapping(64, 16, seed=0)
        counts = np.bincount(m)
        assert counts.max() <= 16

    def test_random_reproducible(self):
        assert np.array_equal(random_mapping(32, 8, seed=3), random_mapping(32, 8, seed=3))

    def test_validate_rejects_bad_shape(self):
        with pytest.raises(NetworkModelError):
            validate_mapping(np.zeros(3, dtype=np.int64), 4, 2)

    def test_validate_rejects_bad_nodes(self):
        with pytest.raises(NetworkModelError):
            validate_mapping(np.array([0, 5]), 2, 2)

    def test_invalid_args(self):
        with pytest.raises(NetworkModelError):
            block_mapping(0, 4)
        with pytest.raises(NetworkModelError):
            round_robin_mapping(4, 0)


class TestMachinePresets:
    def test_registry(self):
        assert set(MACHINES) == {"bgq", "xc40", "xk7"}

    def test_xc40_is_most_latency_bound(self):
        # the paper's Section 6.4 premise
        assert CRAY_XC40.latency_bandwidth_ratio > CRAY_XK7.latency_bandwidth_ratio
        assert CRAY_XC40.latency_bandwidth_ratio > BGQ.latency_bandwidth_ratio

    def test_num_nodes(self):
        assert BGQ.num_nodes(512) == 32
        assert CRAY_XC40.num_nodes(512) == 16

    def test_topology_capacity(self):
        for m in MACHINES.values():
            topo = m.topology(256)
            assert topo.num_nodes >= m.num_nodes(256)

    def test_with_params(self):
        m = BGQ.with_params(alpha_us=10.0)
        assert m.alpha_us == 10.0
        assert m.name == BGQ.name


class TestTimePlan:
    def test_empty_plan_zero_time(self):
        p = CommPattern.from_arrays(32, [], [], [])
        t = time_plan(build_direct_plan(p), BGQ)
        assert t.total_us == 0.0

    def test_single_message_cost(self):
        # both ranks on node 0: cost = alpha + beta*words (sync term off)
        p = CommPattern.from_arrays(32, [0], [1], [100])
        t = time_plan(build_direct_plan(p), BGQ, stage_sync=False)
        assert t.total_us == pytest.approx(BGQ.alpha_us + 100 * BGQ.beta_us_per_word)

    def test_stage_sync_term(self):
        import math

        p = CommPattern.from_arrays(32, [0], [1], [100])
        plan = build_direct_plan(p)
        plain = time_plan(plan, BGQ, stage_sync=False).total_us
        synced = time_plan(plan, BGQ).total_us
        nodes = BGQ.num_nodes(32)
        assert synced == pytest.approx(plain + BGQ.alpha_us * math.log2(nodes))

    def test_stage_sync_penalizes_many_stages(self):
        # same pattern: a deep hypercube plan pays one sync per stage
        p = CommPattern.all_to_all(64, words=1)
        deep = build_plan(p, make_vpt(64, 6))
        shallow = build_plan(p, make_vpt(64, 2))
        d_delta = (
            time_plan(deep, BGQ).total_us - time_plan(deep, BGQ, stage_sync=False).total_us
        )
        s_delta = (
            time_plan(shallow, BGQ).total_us
            - time_plan(shallow, BGQ, stage_sync=False).total_us
        )
        assert d_delta == pytest.approx(3 * s_delta)

    def test_hop_latency_charged(self):
        p = CommPattern.from_arrays(32, [0], [31], [0])
        t = time_plan(build_direct_plan(p), BGQ)
        assert t.total_us > BGQ.alpha_us  # ranks 0 and 31 on different nodes

    def test_total_is_sum_of_stages(self):
        p = CommPattern.random(64, avg_degree=6, seed=1, words=8)
        t = time_plan(build_plan(p, make_vpt(64, 3)), BGQ)
        assert t.total_us == pytest.approx(sum(s.time_us for s in t.stages))
        assert t.n_stages == 3

    def test_latency_bound_pattern_prefers_stfw(self):
        # a hot process sending tiny messages to everyone: BL pays
        # mmax alphas, STFW spreads them
        p = CommPattern.random(256, avg_degree=3, hot_processes=4, seed=7, words=4)
        bl = time_plan(build_direct_plan(p), BGQ).total_us
        stfw = time_plan(build_plan(p, make_vpt(256, 4)), BGQ).total_us
        assert stfw < bl

    def test_bandwidth_bound_pattern_prefers_bl(self):
        # few huge messages: forwarding only adds volume
        p = CommPattern.random(64, avg_degree=2, seed=3, words=2_000_000)
        bl = time_plan(build_direct_plan(p), BGQ).total_us
        stfw = time_plan(build_plan(p, make_vpt(64, 6)), BGQ).total_us
        assert bl < stfw

    def test_custom_mapping_changes_time(self):
        p = CommPattern.all_to_all(64, words=1)
        plan = build_direct_plan(p)
        t_block = time_plan(plan, BGQ).total_us
        t_rr = time_plan(plan, BGQ, mapping=round_robin_mapping(64, 16)).total_us
        assert t_block != t_rr or True  # both valid; just ensure no crash
        assert t_block > 0 and t_rr > 0

    def test_contention_increases_heavy_stage_time(self):
        p = CommPattern.all_to_all(64, words=50_000)
        plan = build_direct_plan(p)
        plain = time_plan(plan, BGQ).total_us
        congested = time_plan(plan, BGQ, contention=True).total_us
        assert congested > plain

    def test_contention_noop_for_light_traffic(self):
        p = CommPattern.from_arrays(32, [0], [1], [1])
        plan = build_direct_plan(p)
        assert time_plan(plan, BGQ, contention=True).total_us == pytest.approx(
            time_plan(plan, BGQ).total_us
        )

    def test_bottleneck_rank_identified(self):
        p = CommPattern.random(64, avg_degree=1, hot_processes=1, seed=0, words=4)
        t = time_plan(build_direct_plan(p), BGQ)
        assert t.stages[0].bottleneck_rank == 0  # the hot process


class TestSpmvComputeTime:
    def test_basic(self):
        t = spmv_compute_time(np.array([1000, 2000]), BGQ)
        assert t == pytest.approx(2 * 2000 / BGQ.flops_per_us)

    def test_empty_rejected(self):
        with pytest.raises(NetworkModelError):
            spmv_compute_time(np.array([]), BGQ)

    def test_negative_rejected(self):
        with pytest.raises(NetworkModelError):
            spmv_compute_time(np.array([-1]), BGQ)
