"""Property-based tests for the timing model's monotonicities."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CommPattern, build_plan, make_vpt
from repro.network import BGQ, time_plan


@st.composite
def patterns(draw):
    K = draw(st.sampled_from([32, 64]))
    deg = draw(st.integers(1, 8))
    hot = draw(st.integers(0, 2))
    seed = draw(st.integers(0, 50))
    words = draw(st.integers(1, 200))
    return CommPattern.random(K, avg_degree=deg, hot_processes=hot, seed=seed, words=words)


class TestTimingMonotonicity:
    @given(patterns(), st.floats(1.1, 4.0))
    @settings(max_examples=25, deadline=None)
    def test_time_increases_with_alpha(self, pattern, factor):
        plan = build_plan(pattern, make_vpt(pattern.K, 2))
        base = time_plan(plan, BGQ).total_us
        slower = time_plan(plan, BGQ.with_params(alpha_us=BGQ.alpha_us * factor)).total_us
        assert slower >= base

    @given(patterns(), st.floats(1.1, 4.0))
    @settings(max_examples=25, deadline=None)
    def test_time_increases_with_beta(self, pattern, factor):
        plan = build_plan(pattern, make_vpt(pattern.K, 2))
        base = time_plan(plan, BGQ).total_us
        slower = time_plan(
            plan, BGQ.with_params(beta_us_per_word=BGQ.beta_us_per_word * factor)
        ).total_us
        assert slower >= base

    @given(patterns())
    @settings(max_examples=25, deadline=None)
    def test_time_nonnegative_and_additive(self, pattern):
        plan = build_plan(pattern, make_vpt(pattern.K, 3))
        t = time_plan(plan, BGQ)
        assert t.total_us >= 0
        assert t.total_us == sum(s.time_us for s in t.stages)
        assert all(s.time_us >= 0 for s in t.stages)

    @given(patterns(), st.floats(1.5, 4.0))
    @settings(max_examples=20, deadline=None)
    def test_time_increases_with_message_sizes(self, pattern, factor):
        bigger = pattern.scaled(factor)
        vpt = make_vpt(pattern.K, 2)
        t_small = time_plan(build_plan(pattern, vpt), BGQ).total_us
        t_big = time_plan(build_plan(bigger, vpt), BGQ).total_us
        assert t_big >= t_small

    @given(patterns())
    @settings(max_examples=20, deadline=None)
    def test_zero_alpha_zero_beta_leaves_only_hops_and_sync(self, pattern):
        plan = build_plan(pattern, make_vpt(pattern.K, 2))
        free = BGQ.with_params(alpha_us=0.0, beta_us_per_word=0.0, alpha_hop_us=0.0)
        assert time_plan(plan, free).total_us == 0.0
