"""Unit tests for physical topologies (torus, dragonfly, flat)."""

import numpy as np
import pytest

from repro.errors import NetworkModelError
from repro.network import DragonflyTopology, FlatTopology, TorusTopology, fit_torus_dims


class TestFlatTopology:
    def test_hops(self):
        t = FlatTopology(8)
        assert t.hops(3, 3) == 0
        assert t.hops(0, 7) == 1

    def test_hops_array(self):
        t = FlatTopology(4)
        a = np.array([0, 1, 2])
        b = np.array([0, 2, 2])
        assert list(t.hops_array(a, b)) == [0, 1, 0]

    def test_bounds(self):
        t = FlatTopology(4)
        with pytest.raises(NetworkModelError):
            t.hops(0, 4)
        with pytest.raises(NetworkModelError):
            t.hops_array(np.array([5]), np.array([0]))

    def test_invalid_size(self):
        with pytest.raises(NetworkModelError):
            FlatTopology(0)

    def test_diameter(self):
        assert FlatTopology(5).diameter() == 1


class TestTorusTopology:
    def test_num_nodes(self):
        assert TorusTopology((4, 4, 4)).num_nodes == 64

    def test_wraparound_distance(self):
        t = TorusTopology((8,))
        assert t.hops(0, 7) == 1  # wrap link
        assert t.hops(0, 4) == 4
        assert t.hops(2, 6) == 4

    def test_multidim_hops_add(self):
        t = TorusTopology((4, 4))
        # (0,0) to (2,3): 2 + 1(wrap) = 3
        assert t.hops(0, 2 + 3 * 4) == 3

    def test_hops_symmetric(self):
        t = TorusTopology((3, 5, 2))
        rng = np.random.default_rng(0)
        for _ in range(30):
            a, b = (int(x) for x in rng.integers(0, t.num_nodes, 2))
            assert t.hops(a, b) == t.hops(b, a)

    def test_hops_array_matches_scalar(self):
        t = TorusTopology((4, 2, 8))
        rng = np.random.default_rng(1)
        a = rng.integers(0, t.num_nodes, 100)
        b = rng.integers(0, t.num_nodes, 100)
        arr = t.hops_array(a, b)
        for x, y, h in zip(a, b, arr):
            assert h == t.hops(int(x), int(y))

    def test_diameter_closed_form(self):
        t = TorusTopology((4, 5))
        brute = max(
            t.hops(a, b) for a in range(t.num_nodes) for b in range(t.num_nodes)
        )
        assert t.diameter() == brute == 4

    def test_coords_roundtrip(self):
        t = TorusTopology((3, 4))
        assert t.coords(7) == (1, 2)

    def test_bounds(self):
        t = TorusTopology((4, 4))
        with pytest.raises(NetworkModelError):
            t.hops(0, 16)
        with pytest.raises(NetworkModelError):
            t.hops_array(np.array([16]), np.array([0]))

    def test_invalid_dims(self):
        with pytest.raises(NetworkModelError):
            TorusTopology(())
        with pytest.raises(NetworkModelError):
            TorusTopology((4, 0))


class TestFitTorusDims:
    def test_power_of_two_exact(self):
        dims = fit_torus_dims(64, 3)
        assert np.prod(dims) == 64

    def test_covers_non_power(self):
        dims = fit_torus_dims(100, 3)
        assert np.prod(dims) >= 100

    def test_five_dims_bgq_style(self):
        dims = fit_torus_dims(1024, 5)
        assert len(dims) == 5
        assert np.prod(dims) >= 1024

    def test_invalid(self):
        with pytest.raises(NetworkModelError):
            fit_torus_dims(0, 3)


class TestDragonflyTopology:
    def test_hop_tiers(self):
        t = DragonflyTopology(groups=2, routers_per_group=2, nodes_per_router=2)
        assert t.hops(0, 0) == 0
        assert t.hops(0, 1) == 1  # same router
        assert t.hops(0, 2) == 2  # same group, other router
        assert t.hops(0, 4) == 3  # other group

    def test_hops_array_matches_scalar(self):
        t = DragonflyTopology(groups=3, routers_per_group=4, nodes_per_router=2)
        rng = np.random.default_rng(2)
        a = rng.integers(0, t.num_nodes, 200)
        b = rng.integers(0, t.num_nodes, 200)
        arr = t.hops_array(a, b)
        for x, y, h in zip(a, b, arr):
            assert h == t.hops(int(x), int(y))

    def test_fit_covers(self):
        t = DragonflyTopology.fit(100, routers_per_group=16, nodes_per_router=4)
        assert t.num_nodes >= 100
        assert t.groups == 2

    def test_group_router_of(self):
        t = DragonflyTopology(groups=2, routers_per_group=2, nodes_per_router=2)
        assert t.router_of(5) == 2
        assert t.group_of(5) == 1

    def test_diameter(self):
        assert DragonflyTopology(2, 2, 2).diameter() == 3
        assert DragonflyTopology(1, 2, 2).diameter() == 2
        assert DragonflyTopology(1, 1, 2).diameter() == 1
        assert DragonflyTopology(1, 1, 1).diameter() == 0

    def test_invalid(self):
        with pytest.raises(NetworkModelError):
            DragonflyTopology(0, 2, 2)
