"""Exporter tests: golden files, schema validation, no-op purity.

The golden files under ``tests/obs/golden/`` pin the exact Chrome-trace
and JSONL output of a small deterministic STFW exchange on a T_2(4,4)
topology.  Everything in that trace runs on virtual clocks, so the
bytes are reproducible across hosts.  Regenerate after an intentional
format change with::

    PYTHONPATH=src python tests/obs/test_export.py regen
"""

import json
import os

import pytest

from repro.core import CommPattern, make_vpt, run_exchange
from repro.errors import ObsError
from repro.network import BGQ
from repro.obs import (
    NULL_TRACER,
    Tracer,
    chrome_trace,
    jsonl_events,
    summary_table,
    validate_chrome_trace,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def golden_exchange():
    """The pinned T_2(4,4) STFW exchange, traced; fully deterministic."""
    pattern = CommPattern.random(16, avg_degree=3, seed=2, words=4)
    vpt = make_vpt(16, 2)
    assert vpt.dim_sizes == (4, 4)
    tracer = Tracer("t2-golden")
    res = run_exchange(pattern, vpt, machine=BGQ, trace=True, tracer=tracer)
    return tracer, res


class TestGoldenFiles:
    def test_chrome_matches_golden(self):
        tracer, res = golden_exchange()
        doc = chrome_trace(tracer, run=res.run, name="t2-golden")
        with open(os.path.join(GOLDEN_DIR, "t2_exchange.trace.json")) as fh:
            assert doc == fh.read()

    def test_jsonl_matches_golden(self):
        tracer, _ = golden_exchange()
        with open(os.path.join(GOLDEN_DIR, "t2_exchange.events.jsonl")) as fh:
            assert jsonl_events(tracer) == fh.read()

    def test_golden_chrome_validates(self):
        with open(os.path.join(GOLDEN_DIR, "t2_exchange.trace.json")) as fh:
            doc = validate_chrome_trace(fh.read())
        phs = {e["ph"] for e in doc["traceEvents"]}
        # metadata, spans, messages + flows, counter totals (a clean
        # run has no instants — those mark faults/timeouts)
        assert {"M", "X", "s", "f", "C"} <= phs

    def test_golden_jsonl_parses(self):
        with open(os.path.join(GOLDEN_DIR, "t2_exchange.events.jsonl")) as fh:
            lines = fh.read().splitlines()
        kinds = {json.loads(line)["kind"] for line in lines}
        assert {"span", "counter"} <= kinds


class TestTraceContent:
    def test_stage_counters_equal_plan_statics(self):
        tracer, res = golden_exchange()
        for d, st in enumerate(res.plan.stages):
            assert tracer.value("stfw.stage_messages", stage=d) == st.num_messages
            assert tracer.value("stfw.stage_words", stage=d) == int(
                st.total_words.sum()
            )

    def test_stage_spans_per_rank(self):
        tracer, res = golden_exchange()
        K, n = 16, 2
        stage_spans = [s for s in tracer.spans if s.cat == "stage"]
        assert len(stage_spans) == K * n
        assert {s.track for s in stage_spans} == set(range(K))

    def test_summary_table_mentions_counters(self):
        tracer, _ = golden_exchange()
        text = summary_table(tracer)
        assert "stfw.stage_messages" in text
        assert "stfw.stage0" in text


class TestValidation:
    def test_rejects_non_object(self):
        with pytest.raises(ObsError):
            validate_chrome_trace("[]")

    def test_rejects_missing_ph(self):
        doc = {
            "displayTimeUnit": "ms",
            "traceEvents": [{"name": "x", "pid": 0, "tid": 0, "ts": 0.0}],
        }
        with pytest.raises(ObsError, match="traceEvents\\[0\\]"):
            validate_chrome_trace(doc)

    def test_rejects_negative_ts(self):
        doc = {
            "displayTimeUnit": "ms",
            "traceEvents": [
                {"name": "x", "ph": "i", "pid": 0, "tid": 0, "ts": -1.0, "s": "t"}
            ],
        }
        with pytest.raises(ObsError):
            validate_chrome_trace(doc)

    def test_empty_tracer_needs_something(self):
        with pytest.raises(ObsError):
            chrome_trace()


def _canon_delivered(delivered):
    """Deliveries as plain lists (payloads are numpy arrays)."""
    return [[(src, list(p)) for src, p in msgs] for msgs in delivered]


class TestNoopPurity:
    """A disabled tracer must not perturb the emulation at all."""

    def test_null_tracer_identical_run_at_k64(self):
        pattern = CommPattern.random(64, avg_degree=6, seed=11, words=8)
        vpt = make_vpt(64, 3)
        base = run_exchange(pattern, vpt, machine=BGQ)
        nulled = run_exchange(pattern, vpt, machine=BGQ, tracer=NULL_TRACER)
        live = run_exchange(pattern, vpt, machine=BGQ, tracer=Tracer())
        assert nulled.run.clocks == base.run.clocks
        assert live.run.clocks == base.run.clocks
        assert nulled.run.makespan_us == base.run.makespan_us
        canon = _canon_delivered(base.delivered)
        assert _canon_delivered(nulled.delivered) == canon
        assert _canon_delivered(live.delivered) == canon

    def test_null_tracer_identical_direct_run(self):
        pattern = CommPattern.random(64, avg_degree=6, seed=11, words=8)
        base = run_exchange(pattern, scheme="direct", machine=BGQ)
        nulled = run_exchange(
            pattern, scheme="direct", machine=BGQ, tracer=NULL_TRACER
        )
        assert nulled.run.clocks == base.run.clocks
        assert _canon_delivered(nulled.delivered) == _canon_delivered(base.delivered)


def _regen():  # pragma: no cover - maintenance helper
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    tracer, res = golden_exchange()
    with open(os.path.join(GOLDEN_DIR, "t2_exchange.trace.json"), "w") as fh:
        fh.write(chrome_trace(tracer, run=res.run, name="t2-golden"))
    with open(os.path.join(GOLDEN_DIR, "t2_exchange.events.jsonl"), "w") as fh:
        fh.write(jsonl_events(tracer))
    print(f"regenerated goldens in {GOLDEN_DIR}")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if sys.argv[1:] == ["regen"]:
        _regen()
    else:
        raise SystemExit("usage: test_export.py regen")
