"""Unit tests for the tracing primitives."""

import pytest

from repro.errors import ObsError
from repro.obs import NULL_TRACER, NullTracer, Tracer


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert NullTracer().enabled is False

    def test_all_methods_are_noops(self):
        nt = NullTracer()
        nt.add_span("s", 0.0, 1.0, track=3, cat="x", stage=1)
        nt.instant("i", 0.5)
        nt.count("c", 2, track=1, stage=0)
        with nt.span("s2", track="host"):
            pass
        assert nt.value("c") == 0.0

    def test_holds_no_state(self):
        # __slots__ = () — nothing can be attached by accident
        with pytest.raises(AttributeError):
            NullTracer().spans = []


class TestSpans:
    def test_add_span_records(self):
        tr = Tracer("t")
        tr.add_span("work", 10.0, 30.0, track=2, cat="stage", stage=1)
        (s,) = tr.spans
        assert s.name == "work"
        assert s.dur_us == 20.0
        assert s.track == 2
        assert dict(s.args) == {"stage": 1}

    def test_backwards_span_rejected(self):
        tr = Tracer()
        with pytest.raises(ObsError, match="work"):
            tr.add_span("work", 5.0, 1.0)

    def test_span_contextmanager_custom_clock(self):
        tr = Tracer()
        t = iter([100.0, 250.0])
        with tr.span("virt", track=1, clock=lambda: next(t)):
            pass
        (s,) = tr.spans
        assert (s.t0_us, s.t1_us) == (100.0, 250.0)

    def test_span_contextmanager_wall_clock(self):
        tr = Tracer()
        with tr.span("wall"):
            pass
        (s,) = tr.spans
        assert s.t1_us >= s.t0_us
        assert s.track == "host"


class TestCounters:
    def test_accumulate_and_read_back(self):
        tr = Tracer()
        tr.count("msgs", 2, stage=0)
        tr.count("msgs", 3, stage=0)
        tr.count("msgs", 7, stage=1)
        assert tr.value("msgs", stage=0) == 5.0
        assert tr.value("msgs", stage=1) == 7.0
        assert tr.value("msgs", stage=9) == 0.0

    def test_tracks_are_separate(self):
        tr = Tracer()
        tr.count("sent", 1, track=0)
        tr.count("sent", 1, track=1)
        assert tr.value("sent", track=0) == 1.0
        assert tr.value("sent") == 0.0  # track=None is its own key

    def test_counter_rows_sorted(self):
        tr = Tracer()
        tr.count("b", 1)
        tr.count("a", 2, stage=1)
        rows = tr.counter_rows()
        assert [r[0] for r in rows] == ["a", "b"]
        assert rows[0][2] == {"stage": 1}

    def test_timeline_samples_are_cumulative(self):
        tr = Tracer()
        tr.count("inflight", 1, ts_us=10.0)
        tr.count("inflight", 2, ts_us=20.0)
        assert [s.value for s in tr.samples] == [1.0, 3.0]

    def test_instants(self):
        tr = Tracer()
        tr.instant("crash", 42.0, track=3, cat="fault", dest=1)
        (i,) = tr.instants
        assert i.ts_us == 42.0 and dict(i.args) == {"dest": 1}


class TestTracks:
    def test_numeric_then_named(self):
        tr = Tracer()
        tr.add_span("a", 0, 1, track=2)
        tr.add_span("b", 0, 1, track=0)
        tr.instant("c", 0, track="host")
        tr.count("d", 1, track=1)
        assert tr.tracks() == [0, 1, 2, "host"]
