"""Unit tests for the multilevel k-way partitioner."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import PartitionError
from repro.matrices import generate_matrix
from repro.partition import (
    coarsen_graph,
    edge_cut,
    multilevel_partition,
    random_partition,
    rcm_partition,
    refine_partition,
)


def structured(n=800, seed=0):
    return generate_matrix(n, n * 8, n // 10, 0.8, locality=0.92, seed=seed)


class TestCoarsening:
    def graph(self, n=400, seed=1):
        A = structured(n, seed)
        G = sp.csr_matrix(A + A.T)
        G.data = np.ones_like(G.data)
        G.setdiag(0)
        G.eliminate_zeros()
        return G

    def test_contraction_shrinks(self):
        G = self.graph()
        rng = np.random.default_rng(0)
        Gc, wc, mapping = coarsen_graph(G, np.ones(G.shape[0]), rng)
        assert Gc.shape[0] < G.shape[0]
        assert Gc.shape[0] >= G.shape[0] // 2

    def test_weights_conserved(self):
        G = self.graph()
        rng = np.random.default_rng(1)
        w = np.random.default_rng(2).uniform(1, 5, G.shape[0])
        _, wc, mapping = coarsen_graph(G, w, rng)
        assert wc.sum() == pytest.approx(w.sum())

    def test_mapping_is_total_and_dense(self):
        G = self.graph()
        rng = np.random.default_rng(3)
        Gc, _, mapping = coarsen_graph(G, np.ones(G.shape[0]), rng)
        assert mapping.min() == 0
        assert mapping.max() == Gc.shape[0] - 1
        # every coarse vertex hosts 1 or 2 fine vertices
        counts = np.bincount(mapping)
        assert counts.max() <= 2

    def test_hubs_stay_unmatched_alone_or_single(self):
        # a star graph: center must not be matched away into the rim
        n = 101
        rows = np.zeros(n - 1, dtype=int)
        cols = np.arange(1, n)
        G = sp.csr_matrix((np.ones(n - 1), (rows, cols)), shape=(n, n))
        G = sp.csr_matrix(G + G.T)
        rng = np.random.default_rng(0)
        Gc, _, mapping = coarsen_graph(G, np.ones(n), rng)
        center_group = mapping[0]
        assert (mapping == center_group).sum() == 1


class TestRefinement:
    def test_refine_reduces_cut(self):
        A = structured(300, seed=4)
        G = sp.csr_matrix(A + A.T)
        G.data = np.ones_like(G.data)
        G.setdiag(0)
        G.eliminate_zeros()
        n = G.shape[0]
        rng = np.random.default_rng(5)
        side = rng.random(n) < 0.5
        w = np.ones(n)

        def cut(s):
            coo = G.tocoo()
            m = coo.row < coo.col
            return int((s[coo.row[m]] != s[coo.col[m]]).sum())

        before = cut(side)
        refine_partition(G, side, w, 0.5 * n)
        assert cut(side) < before


class TestMultilevelPartition:
    def test_valid(self):
        A = structured()
        p = multilevel_partition(A, 8, seed=0)
        assert p.K == 8
        assert p.row_counts().min() >= 1
        assert p.row_counts().sum() == A.shape[0]

    def test_beats_rcm_and_random_on_structure(self):
        A = structured(seed=2)
        cut_ml = edge_cut(A, multilevel_partition(A, 8, seed=0))
        cut_rcm = edge_cut(A, rcm_partition(A, 8))
        cut_rand = edge_cut(A, random_partition(A.shape[0], 8, seed=0))
        assert cut_ml < cut_rcm
        assert cut_ml < cut_rand / 2

    def test_balance(self):
        A = structured()
        p = multilevel_partition(A, 8, seed=1)
        nnz_w = np.diff(sp.csr_matrix(A).indptr).astype(float)
        assert p.imbalance(nnz_w) < 1.8

    def test_non_power_of_two_K(self):
        A = structured(300, seed=6)
        p = multilevel_partition(A, 5, seed=0)
        assert p.K == 5 and p.row_counts().min() >= 1

    def test_reproducible(self):
        A = structured(300, seed=7)
        assert multilevel_partition(A, 4, seed=9) == multilevel_partition(A, 4, seed=9)

    def test_K_exceeds_n(self):
        with pytest.raises(PartitionError):
            multilevel_partition(structured(100, seed=0), 200)

    def test_rectangular_rejected(self):
        with pytest.raises(PartitionError):
            multilevel_partition(sp.random(4, 6, format="csr"), 2)

    def test_unknown_balance(self):
        with pytest.raises(PartitionError):
            multilevel_partition(structured(100, seed=0), 2, balance="bogus")

    def test_registered_in_partitioners(self):
        from repro.partition import PARTITIONERS

        assert "multilevel" in PARTITIONERS

    def test_dense_rows_tolerated(self):
        # the latency-bound instances have near-full rows; the
        # partitioner must survive and stay balanced
        A = generate_matrix(600, 7200, 300, 2.5, dense_rows=2, seed=8)
        p = multilevel_partition(A, 8, seed=0)
        assert p.row_counts().min() >= 1
