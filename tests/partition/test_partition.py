"""Unit tests for partitioners and partition metrics."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import PartitionError
from repro.matrices import generate_matrix
from repro.partition import (
    Partition,
    balanced_blocks_from_order,
    bisection_partition,
    block_partition,
    edge_cut,
    partition_quality,
    random_partition,
    rcm_order,
    rcm_partition,
)


def banded(n=400, band=4, seed=0):
    return generate_matrix(n, n * 8, band * 4, 0.2, locality=0.98, seed=seed)


class TestPartitionClass:
    def test_basic(self):
        p = Partition(np.array([0, 0, 1, 1, 2]), 3)
        assert p.n == 5 and p.K == 3
        assert list(p.row_counts()) == [2, 2, 1]
        assert list(p.rows_of(1)) == [2, 3]

    def test_validation(self):
        with pytest.raises(PartitionError):
            Partition(np.array([0, 3]), 3)
        with pytest.raises(PartitionError):
            Partition(np.array([[0]]), 1)
        with pytest.raises(PartitionError):
            Partition(np.array([0]), 0)

    def test_imbalance_perfect(self):
        p = Partition(np.array([0, 1, 0, 1]), 2)
        assert p.imbalance() == 1.0

    def test_imbalance_weighted(self):
        p = Partition(np.array([0, 1]), 2)
        assert p.imbalance(np.array([3.0, 1.0])) == pytest.approx(1.5)

    def test_weights_shape_checked(self):
        p = Partition(np.array([0, 1]), 2)
        with pytest.raises(PartitionError):
            p.weights_per_part(np.ones(3))

    def test_rows_of_bad_part(self):
        p = Partition(np.array([0]), 1)
        with pytest.raises(PartitionError):
            p.rows_of(1)

    def test_equality(self):
        a = Partition(np.array([0, 1]), 2)
        b = Partition(np.array([0, 1]), 2)
        assert a == b

    def test_parts_readonly(self):
        p = Partition(np.array([0, 1]), 2)
        with pytest.raises(ValueError):
            p.parts[0] = 1


class TestBlockPartition:
    def test_even_split(self):
        p = block_partition(8, 4)
        assert list(p.row_counts()) == [2, 2, 2, 2]

    def test_remainder_goes_first(self):
        p = block_partition(10, 4)
        assert list(p.row_counts()) == [3, 3, 2, 2]

    def test_contiguity(self):
        p = block_partition(100, 7)
        assert (np.diff(p.parts) >= 0).all()

    def test_weighted_blocks(self):
        w = np.array([10.0, 1.0, 1.0, 1.0, 1.0, 10.0])
        p = block_partition(6, 2, weights=w)
        loads = p.weights_per_part(w)
        assert loads.max() / loads.mean() < 1.4

    def test_K_exceeds_n(self):
        with pytest.raises(PartitionError):
            block_partition(3, 4)

    def test_every_part_nonempty(self):
        for n, K in [(16, 16), (17, 16), (100, 33)]:
            assert block_partition(n, K).row_counts().min() >= 1


class TestBalancedBlocksFromOrder:
    def test_respects_order(self):
        order = np.array([4, 3, 2, 1, 0])
        p = balanced_blocks_from_order(order, 2, np.ones(5))
        # first block along the order = rows 4,3,2
        assert p.parts[4] == 0 and p.parts[0] == 1

    def test_heavy_row_isolated(self):
        w = np.array([100.0, 1, 1, 1])
        p = balanced_blocks_from_order(np.arange(4), 2, w)
        assert p.parts[0] == 0
        assert (p.parts[1:] == 1).all()

    def test_zero_total_weight(self):
        p = balanced_blocks_from_order(np.arange(6), 3, np.zeros(6))
        assert p.row_counts().min() >= 1

    def test_negative_weights_rejected(self):
        with pytest.raises(PartitionError):
            balanced_blocks_from_order(np.arange(3), 2, np.array([1.0, -1, 1]))

    def test_nonempty_even_with_skew(self):
        w = np.zeros(10)
        w[0] = 1000.0
        p = balanced_blocks_from_order(np.arange(10), 5, w)
        assert p.row_counts().min() >= 1


class TestRandomPartition:
    def test_balanced(self):
        p = random_partition(1000, 8, seed=0)
        counts = p.row_counts()
        assert counts.max() - counts.min() <= 1

    def test_reproducible(self):
        assert random_partition(100, 4, seed=1) == random_partition(100, 4, seed=1)

    def test_differs_from_block(self):
        assert random_partition(100, 4, seed=1) != block_partition(100, 4)


class TestRcmPartition:
    def test_valid_partition(self):
        A = banded()
        p = rcm_partition(A, 8)
        assert p.K == 8
        assert p.row_counts().min() >= 1

    def test_nnz_balance(self):
        A = banded()
        p = rcm_partition(A, 8, balance="nnz")
        nnz_w = np.diff(sp.csr_matrix(A).indptr).astype(float)
        assert p.imbalance(nnz_w) < 1.5

    def test_beats_random_on_banded(self):
        A = banded()
        cut_rcm = edge_cut(A, rcm_partition(A, 8))
        cut_rand = edge_cut(A, random_partition(A.shape[0], 8, seed=0))
        assert cut_rcm < 0.7 * cut_rand

    def test_order_is_permutation(self):
        A = banded(n=128)
        order = rcm_order(A)
        assert sorted(order) == list(range(128))

    def test_rectangular_rejected(self):
        with pytest.raises(PartitionError):
            rcm_order(sp.random(4, 5, density=0.5, format="csr"))

    def test_unknown_balance(self):
        with pytest.raises(PartitionError):
            rcm_partition(banded(n=64), 2, balance="bogus")


class TestBisectionPartition:
    def test_valid_partition(self):
        A = banded()
        p = bisection_partition(A, 8, seed=0)
        assert p.K == 8
        assert p.row_counts().min() >= 1

    def test_beats_random_on_banded(self):
        A = banded()
        cut_b = edge_cut(A, bisection_partition(A, 8, seed=0))
        cut_rand = edge_cut(A, random_partition(A.shape[0], 8, seed=0))
        assert cut_b < cut_rand / 2

    def test_balance_reasonable(self):
        A = banded()
        p = bisection_partition(A, 8, seed=0)
        nnz_w = np.diff(sp.csr_matrix(A).indptr).astype(float)
        assert p.imbalance(nnz_w) < 1.8

    def test_non_power_of_two_K(self):
        A = banded(n=300)
        p = bisection_partition(A, 5, seed=1)
        assert p.K == 5 and p.row_counts().min() >= 1

    def test_K_exceeds_n(self):
        with pytest.raises(PartitionError):
            bisection_partition(banded(n=64), 100)

    def test_reproducible(self):
        A = banded(n=200)
        assert bisection_partition(A, 4, seed=3) == bisection_partition(A, 4, seed=3)


class TestMetrics:
    def test_edge_cut_zero_for_single_part(self):
        A = banded(n=100)
        p = block_partition(100, 1)
        assert edge_cut(A, p) == 0

    def test_edge_cut_counts_each_edge_once(self):
        # path graph 0-1-2, cut between 1 and 2
        A = sp.csr_matrix(np.array([[1, 1, 0], [1, 1, 1], [0, 1, 1]], dtype=float))
        p = Partition(np.array([0, 0, 1]), 2)
        assert edge_cut(A, p) == 1

    def test_quality_keys(self):
        A = banded(n=100)
        q = partition_quality(A, block_partition(100, 4))
        assert set(q) == {"edge_cut", "cut_fraction", "row_imbalance", "nnz_imbalance"}
        assert 0 <= q["cut_fraction"] <= 1

    def test_size_mismatch(self):
        A = banded(n=100)
        with pytest.raises(PartitionError):
            edge_cut(A, block_partition(50, 2))


class TestConnectivityVolume:
    def test_equals_spmv_pattern_words(self):
        from repro.matrices import generate_matrix
        from repro.partition import connectivity_volume
        from repro.spmv import spmv_pattern

        A = generate_matrix(400, 4800, 80, 1.2, seed=9)
        for K, seed in ((8, 0), (16, 1), (32, 2)):
            p = random_partition(400, K, seed=seed)
            assert connectivity_volume(A, p) == spmv_pattern(A, p).total_words

    def test_zero_for_single_part(self):
        from repro.matrices import generate_matrix
        from repro.partition import connectivity_volume

        A = generate_matrix(100, 1200, 30, 0.8, seed=1)
        assert connectivity_volume(A, block_partition(100, 1)) == 0

    def test_size_mismatch(self):
        from repro.matrices import generate_matrix
        from repro.partition import connectivity_volume

        A = generate_matrix(100, 1200, 30, 0.8, seed=1)
        with pytest.raises(PartitionError):
            connectivity_volume(A, block_partition(50, 2))

    def test_better_partitioner_lower_connectivity(self):
        from repro.matrices import generate_matrix
        from repro.partition import connectivity_volume, multilevel_partition

        A = generate_matrix(600, 6000, 60, 0.6, locality=0.95, seed=5)
        good = connectivity_volume(A, multilevel_partition(A, 8, seed=0))
        bad = connectivity_volume(A, random_partition(600, 8, seed=0))
        assert good < bad
