"""Property-based tests for partitioners."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrices import generate_matrix
from repro.partition import (
    balanced_blocks_from_order,
    bisection_partition,
    block_partition,
    random_partition,
    rcm_partition,
)


@st.composite
def n_and_K(draw):
    n = draw(st.integers(16, 400))
    K = draw(st.integers(1, min(n, 32)))
    return n, K


class TestPartitionInvariants:
    @given(n_and_K())
    @settings(max_examples=40, deadline=None)
    def test_block_every_row_once_no_empty_parts(self, nk):
        n, K = nk
        p = block_partition(n, K)
        assert p.parts.size == n
        assert p.row_counts().min() >= 1
        assert p.row_counts().sum() == n

    @given(n_and_K(), st.integers(0, 10))
    @settings(max_examples=30, deadline=None)
    def test_random_balanced(self, nk, seed):
        n, K = nk
        p = random_partition(n, K, seed=seed)
        counts = p.row_counts()
        assert counts.max() - counts.min() <= 1

    @given(n_and_K(), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_blocks_from_arbitrary_order(self, nk, seed):
        n, K = nk
        rng = np.random.default_rng(seed)
        order = rng.permutation(n).astype(np.int64)
        weights = rng.uniform(0.1, 10.0, n)
        p = balanced_blocks_from_order(order, K, weights)
        assert p.row_counts().min() >= 1
        # each part owns a contiguous run of the given order
        seen_parts = p.parts[order]
        assert (np.diff(seen_parts) >= 0).all()

    @given(st.integers(0, 6), st.integers(2, 16))
    @settings(max_examples=12, deadline=None)
    def test_structural_partitioners_valid(self, seed, K):
        A = generate_matrix(300, 3000, 60, 0.8, locality=0.9, seed=seed)
        for part in (rcm_partition(A, K), bisection_partition(A, K, seed=seed)):
            assert part.K == K
            assert part.row_counts().min() >= 1
            assert part.row_counts().sum() == 300
