"""Unit tests for trace analysis and Chrome-trace export."""

import json
import math

from repro.core import CommPattern, make_vpt, run_exchange
from repro.network import BGQ
from repro.simmpi import rank_summary, run_spmd, stage_breakdown, to_chrome_trace


def traced_run(K=8):
    def worker(comm):
        if comm.rank == 0:
            comm.send(1, "a", tag=0, words=10)
            comm.send(2, "b", tag=1, words=20)
            return None
        if comm.rank in (1, 2):
            yield comm.recv()
        return None

    return run_spmd(K, worker, machine=BGQ, trace=True)


class TestRankSummary:
    def test_totals(self):
        res = traced_run()
        summ = rank_summary(res, 8)
        assert summ[0].sent_messages == 2
        assert summ[0].sent_words == 30
        assert summ[1].recv_messages == 1
        assert summ[2].recv_words == 20
        assert summ[3].sent_messages == 0

    def test_time_spans(self):
        res = traced_run()
        summ = rank_summary(res, 8)
        assert summ[0].first_send_us == 0.0  # real send at t=0 stays 0.0
        assert summ[1].last_arrival_us > 0

    def test_idle_rank_first_send_is_nan(self):
        # "never sent" must be distinguishable from "sent at t=0"
        res = traced_run()
        summ = rank_summary(res, 8)
        assert math.isnan(summ[3].first_send_us)
        assert summ[3].sent_messages == 0

    def test_matches_stfw_stats(self):
        p = CommPattern.random(16, avg_degree=4, seed=2, words=3)
        vpt = make_vpt(16, 2)
        res = run_exchange(p, vpt, trace=True)
        summ = rank_summary(res.run, 16)
        sent = sum(s.sent_messages for s in summ)
        assert sent == res.plan.num_physical_messages


class TestStageBreakdown:
    def test_groups_by_tag(self):
        res = traced_run()
        by = stage_breakdown(res.trace)
        assert by[0]["messages"] == 1 and by[0]["words"] == 10
        assert by[1]["messages"] == 1 and by[1]["words"] == 20

    def test_stfw_stages_match_plan(self):
        p = CommPattern.random(16, avg_degree=4, seed=7, words=2)
        vpt = make_vpt(16, 3)
        res = run_exchange(p, vpt, trace=True)
        by = stage_breakdown(res.run.trace)
        for d, st in enumerate(res.plan.stages):
            if st.num_messages:
                assert by[d]["messages"] == st.num_messages
                assert by[d]["words"] == int(st.total_words.sum())
            else:
                assert d not in by


class TestChromeTrace:
    def test_valid_json_with_events(self):
        res = traced_run()
        doc = json.loads(to_chrome_trace(res))
        assert "traceEvents" in doc
        kinds = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "s", "f"} <= kinds

    def test_one_duration_event_per_message(self):
        res = traced_run()
        doc = json.loads(to_chrome_trace(res))
        durations = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(durations) == len(res.trace)

    def test_rows_named_by_rank(self):
        res = traced_run()
        doc = json.loads(to_chrome_trace(res))
        names = {
            e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"
        }
        assert "rank 0" in names and "rank 1" in names

    def test_display_time_unit_is_ms(self):
        # timestamps are virtual microseconds (the chrome-trace `ts`
        # convention); the format only allows "ms"/"ns" and "ns" made
        # Perfetto scale every duration 1000x too long
        res = traced_run()
        doc = json.loads(to_chrome_trace(res))
        assert doc["displayTimeUnit"] == "ms"

    def test_empty_trace(self):
        def worker(comm):
            return None

        res = run_spmd(4, worker, trace=True)
        doc = json.loads(to_chrome_trace(res))
        assert doc["traceEvents"] == []
