"""Cross-engine equivalence and API tests for the batch backend.

The contract under test: ``SimMPI(K, engine="batch")`` is
**bit-identical** to the default event engine — same ``RunResult``
(returns, clocks, makespan, canonical trace), same chrome-trace bytes,
same obs counters — for every *supported* scenario: planned STFW and
direct (BL) exchanges with a machine model.  Everything else (wildcard
programs, dynamic discovery, faults, jitter, machine-less runs) is
refused eagerly by name, never silently mis-simulated.
"""

import numpy as np
import pytest

from repro.core import CommPattern, make_vpt, run_exchange
from repro.errors import EngineConfigError, PlanError, SimMPIError
from repro.network import BGQ, CRAY_XC40, CRAY_XK7
from repro.obs import Tracer
from repro.simmpi import FaultPlan, SimMPI, engine_names, run_spmd
from repro.simmpi.analysis import to_chrome_trace
from repro.simmpi.batch import BatchSimMPI


def deep_eq(x, y):
    """Semantic equality: exact types, exact dtypes, exact values."""
    if type(x) is not type(y):
        return False
    if isinstance(x, np.ndarray):
        return x.dtype == y.dtype and x.shape == y.shape and np.array_equal(x, y)
    if isinstance(x, (list, tuple)):
        return len(x) == len(y) and all(deep_eq(p, q) for p, q in zip(x, y))
    if isinstance(x, dict):
        return x.keys() == y.keys() and all(deep_eq(v, y[k]) for k, v in x.items())
    return x == y


def assert_same_result(base, got, context=""):
    assert deep_eq(base.returns, got.returns), f"returns diverge {context}"
    assert base.clocks == got.clocks, f"clocks diverge {context}"
    assert base.makespan_us == got.makespan_us, f"makespan diverges {context}"
    assert base.trace == got.trace, f"trace diverges {context}"
    assert base.crashed == got.crashed, f"crashed diverges {context}"
    assert base.fault_events == got.fault_events, f"fault events diverge {context}"


def span_key(s):
    args = tuple(sorted(s.args.items())) if isinstance(s.args, dict) else s.args
    return (s.name, s.t0_us, s.t1_us, s.track, s.cat, args)


def counter_keys(tracer):
    return sorted(
        (name, track if track is not None else -1,
         tuple(sorted(labels.items())) if labels else (), value)
        for name, track, labels, value in tracer.counter_rows()
    )


MACHINES = {"bgq": BGQ, "xc40": CRAY_XC40, "xk7": CRAY_XK7}


class TestExchangeEquivalence:
    """Planned STFW / direct exchanges match across engines, bytes and all."""

    @pytest.fixture(scope="class")
    def pattern(self):
        return CommPattern.random(64, avg_degree=6, hot_processes=3, seed=3, words=4)

    @pytest.mark.parametrize("dims", [2, 3])
    @pytest.mark.parametrize("mname", sorted(MACHINES))
    def test_planned_stfw_bit_identical(self, pattern, dims, mname):
        machine = MACHINES[mname]
        vpt = make_vpt(64, dims)
        base_tr, got_tr = Tracer("eq.event"), Tracer("eq.batch")
        base = run_exchange(pattern, vpt, machine=machine, trace=True, tracer=base_tr)
        got = run_exchange(
            pattern, vpt, machine=machine, trace=True, tracer=got_tr, engine="batch"
        )
        assert_same_result(base.run, got.run, f"(T_{dims}, {mname})")
        assert deep_eq(base.delivered, got.delivered)
        assert to_chrome_trace(base.run) == to_chrome_trace(got.run)
        assert counter_keys(base_tr) == counter_keys(got_tr)
        assert sorted(map(span_key, base_tr.spans)) == sorted(
            map(span_key, got_tr.spans)
        )

    def test_direct_bit_identical(self, pattern):
        base_tr, got_tr = Tracer("eq.event"), Tracer("eq.batch")
        base = run_exchange(
            pattern, machine=BGQ, scheme="direct", trace=True, tracer=base_tr
        )
        got = run_exchange(
            pattern, machine=BGQ, scheme="direct", trace=True, tracer=got_tr,
            engine="batch",
        )
        assert_same_result(base.run, got.run, "(direct)")
        assert deep_eq(base.delivered, got.delivered)
        assert to_chrome_trace(base.run) == to_chrome_trace(got.run)
        assert counter_keys(base_tr) == counter_keys(got_tr)
        assert sorted(map(span_key, base_tr.spans)) == sorted(
            map(span_key, got_tr.spans)
        )

    def test_header_words_bit_identical(self, pattern):
        vpt = make_vpt(64, 2)
        base = run_exchange(pattern, vpt, machine=BGQ, trace=True, header_words=2)
        got = run_exchange(
            pattern, vpt, machine=BGQ, trace=True, header_words=2, engine="batch"
        )
        assert_same_result(base.run, got.run, "(header_words=2)")

    def test_rendezvous_threshold_bit_identical(self, pattern):
        vpt = make_vpt(64, 2)
        base = run_exchange(
            pattern, vpt, machine=BGQ, trace=True, rendezvous_threshold_words=8
        )
        got = run_exchange(
            pattern, vpt, machine=BGQ, trace=True, rendezvous_threshold_words=8,
            engine="batch",
        )
        assert_same_result(base.run, got.run, "(rendezvous)")

    def test_non_power_of_two_K(self):
        pattern = CommPattern.random(96, avg_degree=5, seed=9, words=3)
        vpt = make_vpt(96, 2)
        base = run_exchange(pattern, vpt, machine=CRAY_XK7, trace=True)
        got = run_exchange(
            pattern, vpt, machine=CRAY_XK7, trace=True, engine="batch"
        )
        assert_same_result(base.run, got.run, "(K=96)")

    def test_rerun_is_deterministic(self, pattern):
        vpt = make_vpt(64, 2)
        runs = [
            run_exchange(pattern, vpt, machine=BGQ, trace=True, engine="batch")
            for _ in range(2)
        ]
        assert_same_result(runs[0].run, runs[1].run, "(repeat)")


class TestSpMVEquivalence:
    """Both SpMV drivers produce identical numerics and timing on batch."""

    @pytest.fixture(scope="class")
    def problem(self):
        import scipy.sparse as sp

        from repro.spmv.driver import partition_matrix

        n, K = 400, 16
        rng = np.random.default_rng(5)
        A = (
            sp.random(n, n, density=0.03, random_state=rng, format="csr")
            + sp.eye(n, format="csr")
        ).tocsr()
        x = rng.standard_normal(n)
        return A, partition_matrix(A, K), x

    @pytest.mark.parametrize("layout", ["row", "column"])
    @pytest.mark.parametrize("dims", [None, 2, 3])
    def test_spmv_bit_identical(self, problem, layout, dims):
        from repro.spmv.distributed import distributed_spmv

        A, part, x = problem
        vpt = None if dims is None else make_vpt(16, dims)
        base = distributed_spmv(
            A, part, x, vpt=vpt, machine=BGQ, layout=layout, engine="event"
        )
        got = distributed_spmv(
            A, part, x, vpt=vpt, machine=BGQ, layout=layout, engine="batch"
        )
        assert np.array_equal(base.y, got.y)
        assert base.makespan_us == got.makespan_us
        if layout == "row":
            assert base.clocks == got.clocks

    def test_run_spmd_refused_for_batch(self):
        def proc(comm):
            return comm.rank
            yield

        with pytest.raises(SimMPIError, match="arbitrary process functions"):
            run_spmd(8, proc, machine=BGQ, engine="batch")


class TestEagerRefusals:
    """Everything unsupported is refused by name before any simulation."""

    def test_dispatch_returns_backend_instance(self):
        mpi = SimMPI(8, machine=BGQ, engine="batch")
        assert isinstance(mpi, BatchSimMPI)
        assert mpi.engine_name == "batch"
        assert mpi.planned_only is True

    def test_requires_machine(self):
        with pytest.raises(SimMPIError, match="requires a machine"):
            SimMPI(8, engine="batch")

    def test_rejects_jitter(self):
        with pytest.raises(SimMPIError, match="jitter"):
            SimMPI(8, machine=BGQ, engine="batch", jitter=0.1)

    def test_rejects_fault_plan(self):
        plan = FaultPlan(crashes={3: 10.0}, seed=2)
        with pytest.raises(SimMPIError, match="fault_plan is refused"):
            SimMPI(8, machine=BGQ, engine="batch", fault_plan=plan)

    def test_rejects_workers(self):
        with pytest.raises(EngineConfigError, match="workers=4 requires engine='sharded'"):
            SimMPI(8, machine=BGQ, engine="batch", workers=4)

    def test_rejects_zero_lookahead_machine(self):
        flat = BGQ.with_params(alpha_us=0.0)
        with pytest.raises(SimMPIError, match="lookahead"):
            SimMPI(8, machine=flat, engine="batch")

    def test_run_refused_by_name(self):
        mpi = SimMPI(8, machine=BGQ, engine="batch")
        with pytest.raises(SimMPIError, match="wildcard"):
            mpi.run(lambda comm: iter(()))

    def test_chaos_soak_refused_eagerly(self):
        from repro.errors import ExperimentError
        from repro.experiments import chaos

        with pytest.raises(ExperimentError, match="fault-capable"):
            chaos.run(K=16, epochs=20, engine="batch")

    def test_drift_service_refused_eagerly(self):
        from repro.errors import ExperimentError
        from repro.experiments import drift

        with pytest.raises(ExperimentError, match="NBX rediscovery"):
            drift.run(K=16, epochs=1, service=True, engine="batch")

    def test_dynamic_mode_refused(self):
        pattern = CommPattern.random(16, avg_degree=3, seed=2)
        with pytest.raises(PlanError, match="mode='dynamic'"):
            run_exchange(
                pattern, make_vpt(16, 2), machine=BGQ, mode="dynamic",
                engine="batch",
            )

    def test_tolerate_refused(self):
        pattern = CommPattern.random(16, avg_degree=3, seed=2)
        with pytest.raises(PlanError, match="on_fault='tolerate'"):
            run_exchange(
                pattern, make_vpt(16, 2), machine=BGQ, on_fault="tolerate",
                engine="batch",
            )

    def test_payload_mismatch_refused(self):
        pattern = CommPattern.random(16, avg_degree=3, seed=2, words=2)
        payloads = [dict() for _ in range(16)]  # sends nothing anywhere
        with pytest.raises(SimMPIError, match="disagree with the planned pattern"):
            run_exchange(
                pattern, make_vpt(16, 2), machine=BGQ, payloads=payloads,
                engine="batch",
            )


class TestEngineRegistry:
    """Registry API: deterministic ordering and named error paths."""

    def test_names_are_sorted_and_complete(self):
        names = engine_names()
        assert list(names) == sorted(names)
        assert set(names) >= {"batch", "event", "sharded"}

    def test_unknown_engine_error_lists_available(self):
        with pytest.raises(SimMPIError, match="unknown engine 'warp'") as exc:
            SimMPI(8, machine=BGQ, engine="warp")
        msg = str(exc.value)
        for name in engine_names():
            assert name in msg

    def test_duplicate_register_engine_refused(self):
        from repro.simmpi.engine import _EXTRA, register_engine

        class _Fake(SimMPI):
            pass

        class _Other(SimMPI):
            pass

        try:
            register_engine("fake-dup", _Fake)
            register_engine("fake-dup", _Fake)  # same class: idempotent
            with pytest.raises(SimMPIError, match="already registered"):
                register_engine("fake-dup", _Other)
        finally:
            _EXTRA.pop("fake-dup", None)

    def test_builtin_name_collision_refused(self):
        from repro.simmpi.engine import register_engine

        class _Fake(SimMPI):
            pass

        with pytest.raises(SimMPIError, match="built in"):
            register_engine("batch", _Fake)

    @pytest.mark.parametrize(
        "engine,kwargs,match",
        [
            ("event", {"workers": 4}, "workers=4 requires engine='sharded'"),
            ("batch", {"machine": BGQ, "workers": 4},
             "workers=4 requires engine='sharded'"),
            ("batch", {}, "requires a machine"),
            ("batch", {"machine": BGQ, "jitter": 0.5}, "jitter"),
            ("sharded", {"machine": BGQ, "workers": 2, "jitter": 0.5}, "jitter"),
            ("sharded", {}, "requires a machine"),
        ],
    )
    def test_backend_refusals_are_eager_and_named(self, engine, kwargs, match):
        with pytest.raises(SimMPIError, match=match):
            SimMPI(8, engine=engine, **kwargs)

    def test_workers_error_is_a_value_error(self):
        # the API raises the same eager, named error the CLI enforces
        with pytest.raises(ValueError, match="single-process"):
            SimMPI(8, machine=BGQ, workers=4)
        with pytest.raises(ValueError, match="single-process"):
            SimMPI(8, machine=BGQ, engine="batch", workers=4)


class TestEngineBenchDocument:
    @pytest.fixture(scope="class")
    def doc(self):
        from repro.bench import run_engine_bench

        return run_engine_bench(K=64, workers=2)

    def test_document_validates_with_batch_row(self, doc):
        from repro.bench import ENGINE_SCHEMA, validate_bench_json

        assert doc["schema"] == ENGINE_SCHEMA
        assert validate_bench_json(doc) == []
        assert "batch" in doc["rows"]
        assert "batch_speedup" in doc

    def test_backends_did_the_same_work(self, doc):
        events = {b: row["events"] for b, row in doc["rows"].items()}
        assert len(set(events.values())) == 1
        assert doc["rows"]["batch"]["events"] > 0

    def test_missing_batch_row_fails_validation(self, doc):
        import copy

        from repro.bench import validate_bench_json

        bad = copy.deepcopy(doc)
        del bad["rows"]["batch"]
        assert any("batch" in p for p in validate_bench_json(bad))

    def test_batch_metrics_gate_only_on_same_K(self, doc):
        from repro.bench import compare_bench

        assert compare_bench(doc, doc) == []
        slower = {
            **doc,
            "rows": {
                **doc["rows"],
                "batch": {
                    **doc["rows"]["batch"],
                    "events_per_sec": doc["rows"]["batch"]["events_per_sec"] / 100,
                },
            },
            "batch_speedup": doc["batch_speedup"] / 100,
        }
        assert any("batch" in r for r in compare_bench(slower, doc))
        # a baseline recorded at a different K: batch throughput scales
        # with K, so the batch gates are skipped (and warned about)
        other_k = {**slower, "K": doc["K"] * 4}
        assert compare_bench(other_k, doc) == []

    def test_check_notes_warn_about_skipped_gates(self, doc):
        from repro.bench import bench_check_notes

        assert bench_check_notes(doc, doc) == []
        notes = bench_check_notes({**doc, "K": doc["K"] * 4}, doc)
        assert any("batch" in n and "NOT checked" in n for n in notes)
        notes = bench_check_notes({**doc, "cpus": doc["cpus"] + 7}, doc)
        assert any("sharded" in n and "NOT checked" in n for n in notes)

    def test_format_mentions_core_count_next_to_parallel_metrics(self, doc):
        from repro.bench import format_result

        text = format_result(doc)
        assert f"{doc['cpus']} core(s)" in text
        assert "batch" in text
