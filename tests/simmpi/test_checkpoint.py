"""Unit tests for coordinated checkpoints and heartbeat detection."""

import numpy as np
import pytest

from repro.errors import SimMPIError
from repro.network import BGQ
from repro.simmpi import (
    CheckpointStore,
    FaultPlan,
    RankCheckpoint,
    ReliableComm,
    run_spmd,
)
from repro.simmpi.checkpoint import heartbeat_round


def cp(iteration, rows, values, cursor=None):
    return RankCheckpoint(
        iteration=iteration,
        rows=np.asarray(rows),
        values=np.asarray(values, dtype=np.float64),
        rng_cursor=iteration if cursor is None else cursor,
    )


class TestRankCheckpoint:
    def test_arrays_coerced_and_frozen(self):
        c = cp(3, [0, 2], [1.5, -2.5])
        assert c.rows.dtype == np.int64
        assert c.values.dtype == np.float64
        with pytest.raises(ValueError):
            c.rows[0] = 9
        with pytest.raises(ValueError):
            c.values[0] = 9.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SimMPIError, match="disagree"):
            cp(0, [0, 1, 2], [1.0])


class TestCheckpointStore:
    def test_incomplete_until_every_saver_files(self):
        store = CheckpointStore()
        store.save(0, cp(4, [0], [1.0]), expected_savers=(0, 1))
        assert not store.is_complete(4)
        assert store.savers(4) == {0}
        store.save(1, cp(4, [1], [2.0]), expected_savers=(0, 1))
        assert store.is_complete(4)

    def test_unexpected_saver_rejected(self):
        store = CheckpointStore()
        with pytest.raises(SimMPIError, match="not among"):
            store.save(7, cp(0, [0], [1.0]), expected_savers=(0, 1))

    def test_complete_checkpoint_is_immutable(self):
        store = CheckpointStore()
        store.save(0, cp(2, [0], [1.0]), expected_savers=(0,))
        with pytest.raises(SimMPIError, match="immutable"):
            store.save(0, cp(2, [0], [9.0]), expected_savers=(0,))

    def test_stale_partial_discarded_on_expected_change(self):
        """A crash mid-interval shrinks the saver set; the half-written
        checkpoint from before is discarded, not merged."""
        store = CheckpointStore()
        store.save(0, cp(8, [0, 1], [1.0, 2.0]), expected_savers=(0, 1, 2))
        # rank 2 died; survivors retake iteration 8 over {0, 1}
        store.save(0, cp(8, [0, 1, 2], [1.0, 2.0, 3.0]), expected_savers=(0, 1))
        assert store.savers(8) == {0}
        store.save(1, cp(8, [3], [4.0]), expected_savers=(0, 1))
        assert store.is_complete(8)
        assert np.array_equal(store.restore_vector(8, 4), [1.0, 2.0, 3.0, 4.0])

    def test_latest_complete_with_and_without_bound(self):
        store = CheckpointStore()
        for it in (0, 4, 8):
            store.save(0, cp(it, [0], [float(it)]), expected_savers=(0,))
        store.save(0, cp(12, [0], [12.0]), expected_savers=(0, 1))  # partial
        assert store.latest_complete() == 8
        assert store.latest_complete(before=8) == 4
        assert store.latest_complete(before=0) is None

    def test_restore_rejects_partial_coverage(self):
        store = CheckpointStore()
        store.save(0, cp(0, [0, 1], [1.0, 2.0]), expected_savers=(0,))
        with pytest.raises(SimMPIError, match="covers only"):
            store.restore_vector(0, 4)

    def test_restore_is_ownership_agnostic(self):
        """Global row indices let overlapping saver layouts restore."""
        store = CheckpointStore()
        store.save(0, cp(0, [2, 0], [20.0, 0.0]), expected_savers=(0, 1))
        store.save(1, cp(0, [1, 3], [10.0, 30.0]), expected_savers=(0, 1))
        assert np.array_equal(store.restore_vector(0, 4), [0.0, 10.0, 20.0, 30.0])

    def test_missing_checkpoint_raises(self):
        with pytest.raises(SimMPIError, match="no complete checkpoint"):
            CheckpointStore().checkpoints(3)


class TestHeartbeatRound:
    def _ring(self, comm, timeout_us=300.0):
        rc = ReliableComm(comm, timeout_us=60.0, max_retries=1)
        K = comm.size
        succ = (comm.rank + 1) % K
        pred = (comm.rank - 1) % K
        sus = yield from heartbeat_round(
            rc, ping_to=(succ,), expect_from=(pred,), timeout_us=timeout_us
        )
        return sus

    def test_all_alive_no_suspicion(self):
        res = run_spmd(4, self._ring, machine=BGQ)
        assert res.returns == [[]] * 4

    def test_dead_rank_suspected_by_both_neighbors(self):
        res = run_spmd(
            4, self._ring, machine=BGQ, fault_plan=FaultPlan(crashes={2: 0.0})
        )
        assert res.crashed == [2]
        assert res.returns[1] == [2]  # ack from successor 2 never came
        assert res.returns[3] == [2]  # ping from predecessor 2 never arrived
        assert res.returns[0] == []
