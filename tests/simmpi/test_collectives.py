"""Unit tests for the extended collective/request API of the emulator."""

import pytest

from repro.errors import DeadlockError, SimMPIError
from repro.network import BGQ
from repro.simmpi import run_spmd


class TestRequests:
    def test_isend_returns_complete_request(self):
        def worker(comm):
            if comm.rank == 0:
                req = comm.isend(1, "x", words=1)
                assert req.test()
                return "sent"
            _, _, v = yield comm.irecv()
            return v

        res = run_spmd(2, worker)
        assert res.returns == ["sent", "x"]

    def test_irecv_filters_like_recv(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "a", tag=1, words=1)
                comm.send(1, "b", tag=2, words=1)
                return None
            _, _, v = yield comm.irecv(tag=2)
            return v

        assert run_spmd(2, worker).returns[1] == "b"

    def test_sendrecv_exchange(self):
        def worker(comm):
            other = 1 - comm.rank
            _, _, v = yield comm.sendrecv(other, comm.rank * 10, source=other, words=1)
            return v

        res = run_spmd(2, worker)
        assert res.returns == [10, 0]

    def test_sendrecv_ring(self):
        def worker(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            _, _, v = yield comm.sendrecv(right, comm.rank, source=left, words=1)
            return v

        res = run_spmd(8, worker)
        assert res.returns == [(r - 1) % 8 for r in range(8)]


class TestAllReduce:
    def test_sum(self):
        def worker(comm):
            return (yield comm.allreduce(comm.rank + 1))

        assert run_spmd(4, worker).returns == [10] * 4

    def test_max_min_prod(self):
        def worker(comm):
            mx = yield comm.allreduce(comm.rank, op="max")
            mn = yield comm.allreduce(comm.rank, op="min")
            pr = yield comm.allreduce(comm.rank + 1, op="prod")
            return (mx, mn, pr)

        assert run_spmd(3, worker).returns == [(2, 0, 6)] * 3

    def test_unknown_op(self):
        def worker(comm):
            yield comm.allreduce(1, op="xor")

        with pytest.raises(SimMPIError):
            run_spmd(2, worker)

    def test_mismatched_ops_rejected(self):
        def worker(comm):
            op = "sum" if comm.rank == 0 else "max"
            yield comm.allreduce(1, op=op)

        with pytest.raises(SimMPIError):
            run_spmd(2, worker)

    def test_costs_time(self):
        def worker(comm):
            yield comm.allreduce(1.0, words=100)
            return None

        res = run_spmd(4, worker, machine=BGQ)
        assert res.makespan_us > 0


class TestReduce:
    def test_result_only_at_root(self):
        def worker(comm):
            return (yield comm.reduce(comm.rank, root=2))

        res = run_spmd(4, worker)
        assert res.returns == [None, None, 6, None]

    def test_bad_root(self):
        def worker(comm):
            yield comm.reduce(1, root=9)

        with pytest.raises(SimMPIError):
            run_spmd(2, worker)

    def test_mismatched_roots_rejected(self):
        def worker(comm):
            yield comm.reduce(1, root=comm.rank)

        with pytest.raises(SimMPIError):
            run_spmd(2, worker)


class TestAllToAll:
    def test_transpose_semantics(self):
        def worker(comm):
            out = [comm.rank * 100 + j for j in range(comm.size)]
            return (yield comm.alltoall(out))

        res = run_spmd(3, worker)
        for r in range(3):
            assert res.returns[r] == [q * 100 + r for q in range(3)]

    def test_wrong_length_rejected(self):
        def worker(comm):
            yield comm.alltoall([1, 2])

        with pytest.raises(SimMPIError):
            run_spmd(3, worker)

    def test_cost_scales_with_K(self):
        def worker(comm):
            yield comm.alltoall([0] * comm.size, words=10)
            return None

        small = run_spmd(4, worker, machine=BGQ).makespan_us
        large = run_spmd(16, worker, machine=BGQ).makespan_us
        assert large > small


class TestBcast:
    def test_root_value_everywhere(self):
        def worker(comm):
            payload = "the-data" if comm.rank == 1 else None
            return (yield comm.bcast(payload, root=1))

        assert run_spmd(4, worker).returns == ["the-data"] * 4

    def test_bad_root(self):
        def worker(comm):
            yield comm.bcast(1, root=-1)

        with pytest.raises(SimMPIError):
            run_spmd(2, worker)

    def test_mismatched_roots_rejected(self):
        def worker(comm):
            yield comm.bcast(1, root=comm.rank % 2)

        with pytest.raises(SimMPIError):
            run_spmd(4, worker)


class TestMixedPrograms:
    def test_pipeline_of_collectives_and_p2p(self):
        def worker(comm):
            total = yield comm.allreduce(comm.rank, op="sum")
            if comm.rank == 0:
                comm.send(comm.size - 1, total * 2, words=1)
            yield comm.barrier()
            if comm.rank == comm.size - 1:
                _, _, v = yield comm.recv(source=0)
                return v
            return total

        res = run_spmd(4, worker)
        assert res.returns == [6, 6, 6, 12]

    def test_collective_mismatch_is_deadlock(self):
        def worker(comm):
            if comm.rank == 0:
                yield comm.allreduce(1)
            else:
                yield comm.alltoall([0] * comm.size)

        with pytest.raises(DeadlockError):
            run_spmd(2, worker)

    def test_clocks_aligned_after_collective(self):
        def worker(comm):
            if comm.rank == 0:
                for _ in range(10):
                    comm.send(1, "x", words=50)
            if comm.rank == 1:
                for _ in range(10):
                    yield comm.recv()
            v = yield comm.allreduce(1.0)
            return v

        res = run_spmd(4, worker, machine=BGQ)
        assert len({round(c, 9) for c in res.clocks}) == 1


class TestWaitall:
    def test_mixed_requests_in_order(self):
        def worker(comm):
            if comm.rank == 0:
                reqs = [
                    comm.isend(1, "x", words=1),
                    comm.isend(1, "y", tag=5, words=1),
                ]
                return (yield from comm.waitall(reqs))
            out = yield from comm.waitall([comm.irecv(tag=5), comm.irecv(tag=0)])
            return [v[2] for v in out]

        res = run_spmd(2, worker)
        assert res.returns[0] == [None, None]
        assert res.returns[1] == ["y", "x"]

    def test_empty_list(self):
        def worker(comm):
            out = yield from comm.waitall([])
            return out

        assert run_spmd(1, worker).returns == [[]]

    def test_non_request_rejected(self):
        def worker(comm):
            yield from comm.waitall(["nope"])

        with pytest.raises(SimMPIError):
            run_spmd(1, worker)

    def test_stage_style_exchange(self):
        # the MPI idiom STFW codes use: post all irecvs, send, waitall
        def worker(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            recvs = [comm.irecv(source=left)]
            comm.isend(right, comm.rank, words=1)
            (got,) = yield from comm.waitall(recvs)
            return got[2]

        res = run_spmd(8, worker)
        assert res.returns == [(r - 1) % 8 for r in range(8)]
