"""Cross-validation of the event-driven engine against the seed engine.

The golden values below were recorded by running the *seed* round-robin
scheduler (commit 7e7c611) on a fixed pattern before the event-driven
rewrite:

* ``SEED_DELIVERED`` — per-rank delivered ``(source, payload)`` sets,
* ``SEED_CLOCKS_*`` — per-rank final virtual clocks,
* ``SEED_TRACE_LEN_*`` — delivered-message counts.

The new engine must deliver exactly the same messages with exactly as
many physical transfers.  Clocks are *not* required to be identical:
the rewrite (and the later conservative-matching change that made
wildcard delivery a pure function of virtual time) fixed the seed's
wildcard-matching fidelity bug (``ANY_SOURCE`` receives matched in
engine posting order instead of earliest virtual arrival), which the
seed paid for as spurious waiting — so every per-rank clock must come
out **at most** the seed's.  The
new engine's own clocks are pinned exactly (``NEW_CLOCKS_*``) so any
future scheduler change that shifts virtual time fails loudly here.
"""

import numpy as np
import pytest

from repro.core import CommPattern, make_vpt, run_exchange
from repro.network import BGQ


def fixed_pattern():
    return CommPattern.random(16, avg_degree=4, seed=3, words=2)


def normalize(delivered):
    return [
        sorted((int(s), tuple(int(x) for x in np.asarray(v).ravel())) for s, v in items)
        for items in delivered
    ]


# fmt: off
SEED_DELIVERED = [
    [(3, (48, 48)), (4, (64, 64)), (9, (144, 144)), (10, (160, 160)), (11, (176, 176)), (13, (208, 208))],
    [(5, (81, 81)), (7, (113, 113)), (9, (145, 145)), (11, (177, 177))],
    [(1, (18, 18)), (6, (98, 98)), (9, (146, 146)), (14, (226, 226))],
    [(5, (83, 83))],
    [(0, (4, 4)), (11, (180, 180)), (15, (244, 244))],
    [(4, (69, 69)), (9, (149, 149)), (10, (165, 165)), (11, (181, 181)), (14, (229, 229))],
    [(2, (38, 38)), (7, (118, 118)), (8, (134, 134)), (14, (230, 230))],
    [(1, (23, 23)), (3, (55, 55)), (8, (135, 135)), (12, (199, 199))],
    [(2, (40, 40)), (5, (88, 88)), (15, (248, 248))],
    [(3, (57, 57)), (7, (121, 121))],
    [(3, (58, 58)), (5, (90, 90)), (6, (106, 106)), (8, (138, 138)), (12, (202, 202)), (13, (218, 218))],
    [(0, (11, 11)), (4, (75, 75)), (8, (139, 139)), (9, (155, 155)), (12, (203, 203)), (13, (219, 219)), (14, (235, 235))],
    [(1, (28, 28)), (3, (60, 60)), (13, (220, 220)), (14, (236, 236))],
    [(3, (61, 61)), (5, (93, 93)), (14, (237, 237))],
    [(8, (142, 142)), (10, (174, 174))],
    [(5, (95, 95)), (9, (159, 159)), (10, (175, 175)), (13, (223, 223))],
]

SEED_CLOCKS_PLANNED = [
    19.6928, 18.9872, 20.1872, 18.9872, 18.528, 23.328, 21.4224, 23.2576,
    20.2224, 20.2928, 24.5632, 21.528, 20.2576, 22.0224, 22.0576, 22.0224,
]
SEED_CLOCKS_DYNAMIC = [
    45.1392, 44.3984, 46.8336, 44.3984, 45.0688, 48.7392, 46.8336, 48.6688,
    48.104, 45.704, 49.9744, 47.0096, 45.6688, 47.4336, 47.4688, 47.4336,
]
SEED_CLOCKS_DIRECT = [
    13.4816, 14.6112, 20.6816, 19.4464, 12.8112, 24.3872, 17.6464, 21.9168,
    18.8816, 20.6816, 24.3872, 20.7872, 15.8464, 18.8816, 20.6816, 14.0464,
]
SEED_TRACE_LEN = {"planned": 71, "dynamic": 167, "direct": 62}

NEW_CLOCKS_PLANNED = [
    19.6928, 18.9872, 20.1872, 18.9872, 18.4224, 23.328, 20.152, 23.2576,
    20.2224, 20.2928, 24.5632, 21.4928, 20.2576, 22.0224, 22.0576, 20.752,
]
NEW_CLOCKS_DYNAMIC = [
    45.104, 44.3984, 45.5984, 44.3984, 43.8336, 48.7392, 45.5632, 48.6688,
    45.6336, 45.704, 49.9744, 46.904, 45.6688, 47.4336, 47.4688, 46.1632,
]
NEW_CLOCKS_DIRECT = [
    13.4816, 14.6112, 19.4464, 19.4464, 12.8112, 24.3872, 16.4112, 19.4464,
    18.8816, 20.6816, 19.552, 20.7872, 14.0464, 18.8816, 20.6816, 11.0112,
]
# fmt: on

CASES = {
    "planned": (SEED_CLOCKS_PLANNED, NEW_CLOCKS_PLANNED),
    "dynamic": (SEED_CLOCKS_DYNAMIC, NEW_CLOCKS_DYNAMIC),
    "direct": (SEED_CLOCKS_DIRECT, NEW_CLOCKS_DIRECT),
}


def run_case(label, engine="event"):
    p = fixed_pattern()
    if label == "direct":
        return run_exchange(
            p, scheme="direct", machine=BGQ, trace=True, engine=engine
        )
    return run_exchange(
        p, make_vpt(16, 2), machine=BGQ, mode=label, trace=True, engine=engine
    )


class TestEngineCrossValidation:
    @pytest.mark.parametrize("label", ["planned", "dynamic", "direct"])
    def test_delivered_sets_match_seed(self, label):
        res = run_case(label)
        assert normalize(res.delivered) == SEED_DELIVERED

    @pytest.mark.parametrize("label", ["planned", "dynamic", "direct"])
    def test_trace_length_matches_seed(self, label):
        res = run_case(label)
        assert len(res.run.trace) == SEED_TRACE_LEN[label]

    @pytest.mark.parametrize("label", ["planned", "dynamic", "direct"])
    def test_clocks_never_exceed_seed(self, label):
        # arrival-ordered wildcard matching can only remove the seed's
        # spurious waiting, never add to it
        seed, _ = CASES[label]
        res = run_case(label)
        for r, (new_c, seed_c) in enumerate(zip(res.run.clocks, seed)):
            assert new_c <= seed_c + 1e-9, f"rank {r} slower than seed"

    @pytest.mark.parametrize("label", ["planned", "dynamic", "direct"])
    def test_clocks_pinned_exactly(self, label):
        _, new = CASES[label]
        res = run_case(label)
        assert res.run.clocks == pytest.approx(new, rel=1e-12, abs=1e-9)

    def test_planned_and_dynamic_agree_on_deliveries(self):
        assert normalize(run_case("planned").delivered) == normalize(
            run_case("dynamic").delivered
        )


class TestBatchEngineCrossValidation:
    """The batch engine lands on the same golden pins as the event engine.

    Only the planned and direct labels run here — dynamic discovery is
    refused by the batch engine by design.
    """

    @pytest.mark.parametrize("label", ["planned", "direct"])
    def test_delivered_sets_match_seed(self, label):
        res = run_case(label, engine="batch")
        assert normalize(res.delivered) == SEED_DELIVERED

    @pytest.mark.parametrize("label", ["planned", "direct"])
    def test_trace_length_matches_seed(self, label):
        res = run_case(label, engine="batch")
        assert len(res.run.trace) == SEED_TRACE_LEN[label]

    @pytest.mark.parametrize("label", ["planned", "direct"])
    def test_clocks_pinned_exactly(self, label):
        _, new = CASES[label]
        res = run_case(label, engine="batch")
        assert res.run.clocks == pytest.approx(new, rel=1e-12, abs=1e-9)
