"""Unit tests for NBX-style sparse pattern discovery."""

import pytest

from repro.core import CommPattern
from repro.errors import SimMPIError
from repro.network import BGQ
from repro.simmpi import DiscoveryStats, FaultPlan, nbx_discover, run_spmd
from repro.simmpi.discovery import DISCOVERY_TAG, FRAME_WORDS


def expected_recvsets(pattern):
    """Per-rank {source: words} derived directly from the pattern."""
    out = [dict() for _ in range(pattern.K)]
    for s, d, w in zip(pattern.src, pattern.dst, pattern.size):
        out[int(d)][int(s)] = int(w)
    return out


def discover_all(pattern, *, fault_plan=None, stats=None):
    def worker(comm):
        st = stats[comm.rank] if stats is not None else None
        recvset = yield from nbx_discover(
            comm, pattern.sendset(comm.rank), stats=st
        )
        return recvset

    return run_spmd(pattern.K, worker, machine=BGQ, fault_plan=fault_plan)


class TestDiscovery:
    def test_recvsets_match_pattern(self):
        pattern = CommPattern.random(8, avg_degree=3, seed=0)
        res = discover_all(pattern)
        assert res.returns == expected_recvsets(pattern)

    def test_larger_pattern(self):
        pattern = CommPattern.random(24, avg_degree=5, seed=3)
        res = discover_all(pattern)
        assert res.returns == expected_recvsets(pattern)

    def test_empty_sendsets(self):
        """Ranks with nothing to send still join the consensus."""
        pattern = CommPattern.from_arrays(6, [0], [1], [4])
        res = discover_all(pattern)
        assert res.returns == expected_recvsets(pattern)

    def test_stats_counters(self):
        pattern = CommPattern.random(8, avg_degree=3, seed=1)
        stats = [DiscoveryStats() for _ in range(8)]
        discover_all(pattern, stats=stats)
        sent = sum(st.frames_sent for st in stats)
        received = sum(st.frames_received for st in stats)
        assert sent == pattern.num_messages
        assert received == pattern.num_messages
        assert all(st.rounds >= 1 for st in stats)
        assert all(st.duplicates_suppressed == 0 for st in stats)

    def test_duplicate_frames_suppressed(self):
        """Under duplicate-everything fault injection the recv-sets are
        unchanged and the consensus still terminates."""
        pattern = CommPattern.random(8, avg_degree=3, seed=2)
        stats = [DiscoveryStats() for _ in range(8)]
        res = discover_all(
            pattern, fault_plan=FaultPlan(default_duplicate=1.0, seed=7), stats=stats
        )
        assert res.returns == expected_recvsets(pattern)
        assert sum(st.duplicates_suppressed for st in stats) > 0

    def test_deterministic(self):
        pattern = CommPattern.random(12, avg_degree=4, seed=5)
        a = discover_all(pattern)
        b = discover_all(pattern)
        assert a.returns == b.returns
        assert a.makespan_us == b.makespan_us

    def test_back_to_back_epochs_do_not_bleed(self):
        """Two discovery epochs in one run: each must see only its own
        frames (the consensus drains every frame before anyone exits)."""
        p1 = CommPattern.random(8, avg_degree=3, seed=10)
        p2 = CommPattern.random(8, avg_degree=3, seed=11)

        def worker(comm):
            r1 = yield from nbx_discover(comm, p1.sendset(comm.rank))
            r2 = yield from nbx_discover(comm, p2.sendset(comm.rank))
            return (r1, r2)

        res = run_spmd(8, worker, machine=BGQ)
        e1 = expected_recvsets(p1)
        e2 = expected_recvsets(p2)
        for r in range(8):
            assert res.returns[r] == (e1[r], e2[r])

    def test_rejects_bad_timeout(self):
        def worker(comm):
            recvset = yield from nbx_discover(comm, {}, probe_timeout_us=0.0)
            return recvset

        with pytest.raises(SimMPIError):
            run_spmd(2, worker, machine=BGQ)

    def test_rejects_negative_words(self):
        def worker(comm):
            sendset = {1 - comm.rank: -1}
            recvset = yield from nbx_discover(comm, sendset)
            return recvset

        with pytest.raises(SimMPIError):
            run_spmd(2, worker, machine=BGQ)


def discover_survivors(pattern, dead, *, stats=None):
    """Post-shrink rediscovery, exactly as the persistent service runs
    it: the dead crash at t=0, survivors ``shrink()`` to agree on them,
    then rediscover with the agreed set masked.  The shrink is what
    lets the consensus ``allreduce`` complete over the survivors."""
    gone = set(dead)

    def worker(comm):
        agreed = yield comm.shrink()
        st = stats[comm.rank] if stats is not None else None
        recvset = yield from nbx_discover(
            comm, pattern.sendset(comm.rank), dead=set(agreed), stats=st
        )
        return recvset

    fault_plan = FaultPlan(crashes={r: 0.0 for r in gone})
    return run_spmd(pattern.K, worker, machine=BGQ, fault_plan=fault_plan)


class TestDiscoveryWithDeadRanks:
    """Post-shrink rediscovery: the agreed dead are masked, not trusted."""

    def test_survivor_consensus_terminates_and_excludes_dead(self):
        """Sendsets still name dead destinations; the mask keeps the
        consensus sum from wedging on frames that can never be acked."""
        pattern = CommPattern.random(12, avg_degree=4, seed=7)
        dead = {3, 8}
        res = discover_survivors(pattern, dead)
        expected = expected_recvsets(pattern)
        for r in range(12):
            if r in dead:
                continue
            want = {s: w for s, w in expected[r].items() if s not in dead}
            assert res.returns[r] == want

    def test_skipped_dead_destinations_are_counted(self):
        pattern = CommPattern.random(12, avg_degree=4, seed=7)
        dead = {3, 8}
        stats = [DiscoveryStats() for _ in range(12)]
        discover_survivors(pattern, dead, stats=stats)
        sends_to_dead = sum(
            1
            for s, d in zip(pattern.src, pattern.dst)
            if int(s) not in dead and int(d) in dead
        )
        assert (
            sum(st.frames_skipped_dead for st in stats) == sends_to_dead
        )
        # skipped frames are not part of the consensus accounting
        for r, st in enumerate(stats):
            if r not in dead:
                assert st.frames_sent == len(
                    {
                        d
                        for s, d in zip(pattern.src, pattern.dst)
                        if int(s) == r and int(d) not in dead
                    }
                )

    def test_frames_from_dead_sources_are_ignored(self):
        """A speculative frame a source got out before dying must not
        be trusted.  The shrink purges in-flight mail, so the only way
        such a frame reaches a survivor is a post-purge replay — rank 1
        replays one here — and discovery must drop it rather than let a
        dead rank into the rediscovered recv-set."""
        K = 4
        stats = [DiscoveryStats() for _ in range(K)]
        sendsets = {2: {0: 5}}

        def worker(comm):
            agreed = yield comm.shrink()
            if comm.rank == 1:
                # frame rank 3 fired before it crashed, replayed late
                comm.send(0, (3, 9), tag=DISCOVERY_TAG, words=FRAME_WORDS)
            recvset = yield from nbx_discover(
                comm,
                sendsets.get(comm.rank, {}),
                dead=set(agreed),
                stats=stats[comm.rank],
            )
            return recvset

        res = run_spmd(
            K, worker, machine=BGQ, fault_plan=FaultPlan(crashes={3: 0.0})
        )
        assert res.returns[0] == {2: 5}  # live source kept, dead dropped
        assert stats[0].frames_ignored_dead == 1
        assert stats[0].frames_received == 1

    def test_dead_rank_calling_discover_is_an_error(self):
        def worker(comm):
            recvset = yield from nbx_discover(comm, {}, dead={comm.rank})
            return recvset

        with pytest.raises(SimMPIError):
            run_spmd(2, worker, machine=BGQ)

    def test_empty_dead_set_matches_plain_discovery(self):
        """With nobody crashed the shrink agrees on an empty dead set
        and rediscovery degenerates to the plain protocol."""
        pattern = CommPattern.random(8, avg_degree=3, seed=0)
        res = discover_survivors(pattern, set())
        assert res.returns == expected_recvsets(pattern)
