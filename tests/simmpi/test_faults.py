"""Unit tests for the fault-injection subsystem."""

import pytest

from repro.errors import DeadlockError, PendingOp, SimMPIError
from repro.network import BGQ
from repro.simmpi import (
    TIMEOUT,
    FaultEvent,
    FaultPlan,
    LinkOutage,
    run_spmd,
)


def ping(comm):
    """Rank 0 sends one word to rank 1."""
    if comm.rank == 0:
        comm.send(1, "hello", words=1)
        return "sent"
    src, _, payload = yield comm.recv(timeout_us=1e6)
    return (src, payload)


class TestTrivialPlan:
    def test_no_plan_equals_trivial_plan(self):
        """A fault-free FaultPlan yields a byte-identical RunResult."""

        def worker(comm):
            other = 1 - comm.rank
            comm.send(other, comm.rank, words=4)
            _, _, v = yield comm.recv(source=other)
            ack = yield comm.allreduce(v, words=1)
            return (v, ack)

        bare = run_spmd(2, worker, machine=BGQ, trace=True)
        trivial = run_spmd(
            2, worker, machine=BGQ, trace=True, fault_plan=FaultPlan()
        )
        assert bare == trivial

    def test_is_trivial(self):
        assert FaultPlan().is_trivial
        assert FaultPlan(stragglers={0: 1.0}, link_drop={(0, 1): 0.0}).is_trivial
        assert not FaultPlan(crashes={0: 5.0}).is_trivial
        assert not FaultPlan(default_drop=0.1).is_trivial
        assert not FaultPlan(stragglers={0: 2.0}).is_trivial
        assert not FaultPlan(outages=(LinkOutage(0, 1, 0.0, 1.0),)).is_trivial


class TestValidation:
    def test_crash_rank_out_of_range(self):
        with pytest.raises(SimMPIError, match="outside"):
            run_spmd(2, ping, fault_plan=FaultPlan(crashes={5: 1.0}))

    def test_negative_crash_time(self):
        with pytest.raises(SimMPIError, match="negative"):
            run_spmd(2, ping, fault_plan=FaultPlan(crashes={0: -1.0}))

    def test_bad_probability(self):
        with pytest.raises(SimMPIError, match=r"outside \[0, 1\]"):
            run_spmd(2, ping, fault_plan=FaultPlan(default_drop=1.5))
        with pytest.raises(SimMPIError, match=r"outside \[0, 1\]"):
            run_spmd(2, ping, fault_plan=FaultPlan(link_drop={(0, 1): -0.1}))

    def test_bad_straggler(self):
        with pytest.raises(SimMPIError, match="positive"):
            run_spmd(2, ping, fault_plan=FaultPlan(stragglers={0: 0.0}))

    def test_reversed_outage_window(self):
        with pytest.raises(SimMPIError, match="reversed"):
            run_spmd(
                2, ping, fault_plan=FaultPlan(outages=(LinkOutage(0, 1, 5.0, 1.0),))
            )


class TestEagerValidation:
    """Satellite: invalid values fail at construction, naming the field."""

    def test_bad_probability_at_construction(self):
        with pytest.raises(SimMPIError, match=r"default_drop=1.5 outside \[0, 1\]"):
            FaultPlan(default_drop=1.5)
        with pytest.raises(SimMPIError, match=r"link_drop\[0,1\]=-0.1"):
            FaultPlan(link_drop={(0, 1): -0.1})
        with pytest.raises(SimMPIError, match=r"link_duplicate\[2,3\]=2\.0"):
            FaultPlan(link_duplicate={(2, 3): 2.0})
        with pytest.raises(SimMPIError, match="default_duplicate"):
            FaultPlan(default_duplicate=-0.5)

    def test_bad_times_at_construction(self):
        with pytest.raises(SimMPIError, match="negative"):
            FaultPlan(crashes={0: -1.0})
        with pytest.raises(SimMPIError, match="positive"):
            FaultPlan(stragglers={0: 0.0})
        with pytest.raises(SimMPIError, match="reversed"):
            FaultPlan(outages=(LinkOutage(0, 1, 5.0, 1.0),))

    def test_rank_range_checks_still_deferred_to_validate(self):
        """Rank bounds need K, so they only fire on validate(K)."""
        plan = FaultPlan(crashes={5: 1.0})  # constructs fine
        with pytest.raises(SimMPIError, match="outside"):
            plan.validate(2)


class TestJsonRoundTrip:
    """Satellite: to_json/from_json reproduce the plan exactly."""

    def test_full_plan_round_trips(self):
        plan = FaultPlan(
            crashes={3: 12.5, 0: 0.0},
            link_drop={(0, 1): 0.25, (2, 0): 1.0},
            link_duplicate={(1, 2): 0.5},
            default_drop=0.01,
            default_duplicate=0.02,
            stragglers={1: 2.5},
            outages=(LinkOutage(0, 1, 5.0, 10.0), LinkOutage(-1, 2, 0.0, 3.0)),
            seed=42,
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_empty_plan_round_trips(self):
        plan = FaultPlan()
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan and again.is_trivial

    def test_json_is_canonical(self):
        """Same plan, same string — dict insertion order is irrelevant."""
        a = FaultPlan(crashes={2: 1.0, 1: 5.0}, link_drop={(1, 0): 0.5, (0, 1): 0.5})
        b = FaultPlan(crashes={1: 5.0, 2: 1.0}, link_drop={(0, 1): 0.5, (1, 0): 0.5})
        assert a.to_json() == b.to_json()

    def test_from_json_tolerates_missing_fields(self):
        plan = FaultPlan.from_json('{"crashes": {"4": 7.0}}')
        assert plan.crashes == {4: 7.0}
        assert plan.seed == 0 and plan.outages == ()

    def test_from_json_validates_eagerly(self):
        with pytest.raises(SimMPIError, match=r"outside \[0, 1\]"):
            FaultPlan.from_json('{"default_drop": 3.0}')


class TestCrashes:
    def test_crash_before_send_kills_message(self):
        """A rank crashed at t=0 sends nothing; the receiver times out."""

        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "x", words=1)
                return "sent"
            got = yield comm.recv(timeout_us=100.0)
            return got

        res = run_spmd(2, worker, machine=BGQ, fault_plan=FaultPlan(crashes={0: 0.0}))
        assert res.crashed == [0]
        assert res.returns[0] is None
        assert res.returns[1] is TIMEOUT
        assert any(e.kind == "crash" and e.rank == 0 for e in res.fault_events)

    def test_crash_while_blocked(self):
        """A rank blocked on recv past its crash time dies there."""

        def worker(comm):
            if comm.rank == 0:
                yield comm.recv()  # nobody sends: blocks forever
                return "never"
            got = yield comm.recv(timeout_us=50.0)
            return got

        res = run_spmd(2, worker, machine=BGQ, fault_plan=FaultPlan(crashes={0: 10.0}))
        assert res.crashed == [0]
        assert res.returns == [None, TIMEOUT]

    def test_crash_causes_structured_deadlock(self):
        """A receive depending on a crashed sender raises DeadlockError
        with machine-readable pending state naming the blocked rank."""

        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "x", tag=3, words=1)
                return "sent"
            src, _, v = yield comm.recv(source=0, tag=3)
            return (src, v)

        with pytest.raises(DeadlockError) as ei:
            run_spmd(2, worker, machine=BGQ, fault_plan=FaultPlan(crashes={0: 0.0}))
        exc = ei.value
        assert exc.crashed == (0,)
        assert len(exc.clocks) == 2
        assert exc.pending == (
            PendingOp(rank=1, kind="recv", source=0, tag=3, mailbox=0),
        )
        assert "crashed" in str(exc)

    def test_send_to_dead_rank_is_dropped(self):
        """Messages to an already-dead rank vanish with reason dest-dead."""

        def worker(comm):
            if comm.rank == 0:
                yield comm.recv(timeout_us=100.0)  # outlive rank 1's crash
                comm.send(1, "late", words=1)
                return "done"
            got = yield comm.recv(timeout_us=500.0)
            return got

        res = run_spmd(2, worker, machine=BGQ, fault_plan=FaultPlan(crashes={1: 10.0}))
        assert res.crashed == [1]
        drops = [e for e in res.fault_events if e.kind == "drop"]
        assert drops and drops[0].reason == "dest-dead"
        assert drops[0].dest == 1


class TestDropsAndDuplicates:
    def test_certain_drop(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "x", words=1)
                return None
            return (yield comm.recv(timeout_us=100.0))

        res = run_spmd(
            2, worker, machine=BGQ, fault_plan=FaultPlan(link_drop={(0, 1): 1.0})
        )
        assert res.returns[1] is TIMEOUT
        assert [e.kind for e in res.fault_events] == ["drop"]
        assert res.fault_events[0].reason == "link"

    def test_certain_duplicate_delivered_twice(self):
        """The engine posts a duplicated envelope twice; satellite
        dedup (ReliableComm) is tested separately."""

        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "x", words=1)
                return None
            first = yield comm.recv(timeout_us=100.0)
            second = yield comm.recv(timeout_us=100.0)
            return (first, second)

        res = run_spmd(
            2, worker, machine=BGQ, fault_plan=FaultPlan(link_duplicate={(0, 1): 1.0})
        )
        first, second = res.returns[1]
        assert first == (0, 0, "x") and second == (0, 0, "x")
        assert [e.kind for e in res.fault_events] == ["duplicate"]

    def test_drop_only_on_configured_link(self):
        def worker(comm):
            if comm.rank in (0, 1):
                comm.send(2, comm.rank, words=1)
                return None
            got = []
            for _ in range(2):
                m = yield comm.recv(timeout_us=100.0)
                if m is not TIMEOUT:
                    got.append(m[0])
            return sorted(got)

        res = run_spmd(
            3, worker, machine=BGQ, fault_plan=FaultPlan(link_drop={(0, 2): 1.0})
        )
        assert res.returns[2] == [1]

    def test_seed_determinism(self):
        def worker(comm):
            if comm.rank == 0:
                for i in range(40):
                    comm.send(1, i, words=1)
                return None
            got = []
            while True:
                m = yield comm.recv(timeout_us=200.0)
                if m is TIMEOUT:
                    return got
                got.append(m[2])

        plan = FaultPlan(default_drop=0.3, seed=42)
        a = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        b = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        assert a == b
        c = run_spmd(2, worker, machine=BGQ, fault_plan=FaultPlan(default_drop=0.3, seed=43))
        assert c.returns[1] != a.returns[1]  # different seed, different fate


class TestStragglersAndOutages:
    def test_straggler_inflates_makespan(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "x", words=1000)
                return None
            return (yield comm.recv())

        base = run_spmd(2, worker, machine=BGQ)
        slow = run_spmd(
            2, worker, machine=BGQ, fault_plan=FaultPlan(stragglers={0: 4.0})
        )
        assert slow.makespan_us > 2.0 * base.makespan_us
        assert slow.returns[1] == base.returns[1]  # payload still arrives

    def test_outage_window_drops_then_recovers(self):
        """Only sends starting inside [start, end) are dropped."""

        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "early", words=1)  # t = 0: inside the window
                yield comm.recv(timeout_us=100.0)  # advance past the outage
                comm.send(1, "late", words=1)
                return None
            got = []
            while True:
                m = yield comm.recv(timeout_us=300.0)
                if m is TIMEOUT:
                    return got
                got.append(m[2])

        plan = FaultPlan(outages=(LinkOutage(0, 1, 0.0, 50.0),))
        res = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        assert res.returns[1] == ["late"]
        assert [e.reason for e in res.fault_events] == ["outage"]


class TestRecvTimeout:
    def test_timeout_fires_without_sender(self):
        def worker(comm):
            got = yield comm.recv(timeout_us=25.0)
            return (got, comm.time)

        res = run_spmd(1, worker, machine=BGQ)
        got, t = res.returns[0]
        assert got is TIMEOUT
        assert t == pytest.approx(25.0)

    def test_message_beats_timeout(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "fast", words=1)
                return None
            got = yield comm.recv(timeout_us=1e6)
            return got[2]

        res = run_spmd(2, worker, machine=BGQ)
        assert res.returns[1] == "fast"

    def test_nonpositive_timeout_rejected(self):
        def worker(comm):
            yield comm.recv(timeout_us=0.0)

        with pytest.raises(SimMPIError, match="timeout_us"):
            run_spmd(1, worker)


class TestSendValidation:
    """Satellite: eager argument validation naming the offending rank."""

    def test_dest_out_of_range(self):
        def worker(comm):
            comm.send(7, "x", words=1)
            return None
            yield  # pragma: no cover

        with pytest.raises(SimMPIError, match=r"rank 0: send to rank 7"):
            run_spmd(2, worker)

    def test_negative_dest(self):
        def worker(comm):
            comm.send(-1, "x", words=1)
            return None
            yield  # pragma: no cover

        with pytest.raises(SimMPIError, match=r"rank 0: send to rank -1"):
            run_spmd(2, worker)

    def test_negative_words(self):
        def worker(comm):
            comm.send(1, "x", words=-3)
            return None
            yield  # pragma: no cover

        with pytest.raises(
            SimMPIError, match=r"rank 0: message words must be non-negative"
        ):
            run_spmd(2, worker)

    def test_negative_tag(self):
        def worker(comm):
            comm.send(1, "x", tag=-2, words=1)
            return None
            yield  # pragma: no cover

        with pytest.raises(SimMPIError, match=r"rank 0: .*negative tag"):
            run_spmd(2, worker)

    def test_isend_validates_too(self):
        def worker(comm):
            if comm.rank == 1:
                comm.isend(9, "x", words=1)
            return None
            yield  # pragma: no cover

        with pytest.raises(SimMPIError, match=r"rank 1: send to rank 9"):
            run_spmd(2, worker)


class TestFaultEventLog:
    def test_events_carry_link_and_size(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "x", tag=5, words=17)
                return None
            return (yield comm.recv(timeout_us=100.0))

        res = run_spmd(
            2, worker, machine=BGQ, fault_plan=FaultPlan(link_drop={(0, 1): 1.0})
        )
        (e,) = res.fault_events
        assert isinstance(e, FaultEvent)
        assert (e.rank, e.dest, e.tag, e.words) == (0, 1, 5, 17)


class TestBitflipValidation:
    """Satellite: every rejection names the offending field and key."""

    def test_link_flip_bad_probability_names_link(self):
        with pytest.raises(SimMPIError, match=r"link_flip\[0,1\]=1\.5"):
            FaultPlan(link_flip={(0, 1): 1.5})

    def test_default_flip_bad_probability(self):
        with pytest.raises(SimMPIError, match=r"default_flip=-0\.1"):
            FaultPlan(default_flip=-0.1)

    def test_corrupt_forwarder_bad_probability_names_rank(self):
        with pytest.raises(SimMPIError, match=r"corrupt_forwarders\[3\]=2"):
            FaultPlan(corrupt_forwarders={3: 2.0})

    def test_compute_flip_bad_probability_names_rank(self):
        with pytest.raises(SimMPIError, match=r"compute_flips\[1\]=-1"):
            FaultPlan(compute_flips={1: -1.0})

    def test_corrupt_forwarder_rank_range_checked_at_validate(self):
        plan = FaultPlan(corrupt_forwarders={9: 0.5})
        with pytest.raises(SimMPIError, match=r"corrupt_forwarders\[9\].*outside \[0, 4\)"):
            plan.validate(4)

    def test_compute_flip_rank_range_checked_at_validate(self):
        plan = FaultPlan(compute_flips={7: 0.5})
        with pytest.raises(SimMPIError, match=r"compute_flips\[7\].*outside \[0, 4\)"):
            plan.validate(4)

    def test_link_flip_rank_range_checked_at_validate(self):
        plan = FaultPlan(link_flip={(0, 6): 0.5})
        with pytest.raises(SimMPIError, match=r"link_flip link \(0, 6\)"):
            plan.validate(4)

    def test_outage_rejection_names_event_index(self):
        from repro.simmpi import LinkOutage

        with pytest.raises(SimMPIError, match=r"outages\[1\]"):
            FaultPlan(
                outages=(
                    LinkOutage(0, 1, 0.0, 1.0),
                    LinkOutage(0, 1, 5.0, 2.0),
                )
            )


class TestBitflipTriviality:
    def test_zero_probability_flips_are_trivial(self):
        assert FaultPlan(
            link_flip={(0, 1): 0.0},
            default_flip=0.0,
            corrupt_forwarders={2: 0.0},
            compute_flips={1: 0.0},
        ).is_trivial

    def test_nonzero_flips_are_not_trivial(self):
        assert not FaultPlan(default_flip=0.1).is_trivial
        assert not FaultPlan(link_flip={(0, 1): 0.1}).is_trivial
        assert not FaultPlan(corrupt_forwarders={0: 0.1}).is_trivial
        assert not FaultPlan(compute_flips={0: 0.1}).is_trivial

    def test_trivial_flip_plan_byte_identical_to_no_plan(self):
        """Acceptance: a bitflip plan with all-zero probabilities yields
        a byte-identical RunResult to running with no plan at all."""

        def worker(comm):
            other = 1 - comm.rank
            comm.send(other, comm.rank, words=4)
            _, _, v = yield comm.recv(source=other)
            ack = yield comm.allreduce(v, words=1)
            return (v, ack)

        bare = run_spmd(2, worker, machine=BGQ, trace=True)
        trivial = run_spmd(
            2,
            worker,
            machine=BGQ,
            trace=True,
            fault_plan=FaultPlan(
                link_flip={(0, 1): 0.0},
                default_flip=0.0,
                corrupt_forwarders={0: 0.0},
                compute_flips={1: 0.0},
            ),
        )
        assert bare == trivial


class TestBitflipRoundTrip:
    def test_flip_fields_round_trip(self):
        plan = FaultPlan(
            link_flip={(0, 1): 0.25, (2, 0): 1.0},
            default_flip=0.05,
            corrupt_forwarders={3: 1.0, 1: 0.5},
            compute_flips={0: 0.25},
            seed=17,
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_flip_json_validates_eagerly(self):
        with pytest.raises(SimMPIError, match=r"default_flip=2\.0"):
            FaultPlan.from_json('{"default_flip": 2.0}')


class TestInTransitFlips:
    def test_certain_link_flip_corrupts_payload(self):
        """A raw (non-reliable) send over a flipping link delivers a
        payload that differs from the original in exactly one bit."""
        import numpy as np

        sent = np.arange(8, dtype=np.int64)

        def worker(comm):
            if comm.rank == 0:
                comm.send(1, sent, words=8)
                return None
            _, _, payload = yield comm.recv(timeout_us=1000.0)
            return np.asarray(payload)

        plan = FaultPlan(link_flip={(0, 1): 1.0}, seed=3)
        res = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        got = res.returns[1]
        assert got.tobytes() != sent.tobytes()
        xor = np.bitwise_xor(got, sent)
        assert sum(int(x).bit_count() for x in xor) == 1

    def test_flip_is_seed_deterministic(self):
        import numpy as np

        def worker(comm):
            if comm.rank == 0:
                comm.send(1, np.arange(8, dtype=np.int64), words=8)
                return None
            _, _, payload = yield comm.recv(timeout_us=1000.0)
            return np.asarray(payload).tobytes()

        plan = FaultPlan(default_flip=1.0, seed=9)
        a = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        b = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        assert a.returns[1] == b.returns[1]

    def test_flip_leaves_unconfigured_link_clean(self):
        import numpy as np

        def worker(comm):
            if comm.rank == 0:
                comm.send(1, np.arange(4, dtype=np.int64), words=4)
                return None
            _, _, payload = yield comm.recv(timeout_us=1000.0)
            return np.asarray(payload)

        plan = FaultPlan(link_flip={(1, 0): 1.0}, seed=3)  # other direction
        res = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        assert (res.returns[1] == np.arange(4)).all()
