"""Unit tests for checksum and bit-flip primitives (``repro.simmpi.integrity``)."""

import numpy as np
import pytest

from repro.simmpi.integrity import (
    corrupt_draw,
    flip_array,
    flip_payload,
    payload_checksum,
)


class TestPayloadChecksum:
    def test_deterministic(self):
        a = np.arange(10, dtype=np.int64)
        assert payload_checksum(a) == payload_checksum(a.copy())

    def test_range(self):
        for obj in (None, 0, 1.5, "s", b"b", np.arange(3), [1, (2, "x")]):
            ck = payload_checksum(obj)
            assert 0 <= ck < 2**32

    def test_single_bit_flip_changes_checksum(self):
        a = np.arange(64, dtype=np.int64)
        for key in range(20):
            flipped = flip_array(a, 5, key)
            assert payload_checksum(flipped) != payload_checksum(a)

    def test_dtype_and_shape_matter(self):
        a = np.zeros(4, dtype=np.int64)
        assert payload_checksum(a) != payload_checksum(a.astype(np.float64))
        assert payload_checksum(a) != payload_checksum(a.reshape(2, 2))

    def test_structure_matters(self):
        # same bytes in different containers must not collide trivially
        assert payload_checksum((1, 2)) != payload_checksum([1, 2, 3][:2] + [None])
        assert payload_checksum("12") != payload_checksum(12)
        assert payload_checksum(True) != payload_checksum(1.0)

    def test_nested_containers_covered(self):
        inner = np.arange(5, dtype=np.float64)
        payload = {"k": (1, inner), "other": "meta"}
        tampered = {"k": (1, flip_array(inner, 3, 0)), "other": "meta"}
        assert payload_checksum(payload) != payload_checksum(tampered)


class TestCorruptDraw:
    def test_pure_function_of_key(self):
        assert corrupt_draw(7, 1, 2) == corrupt_draw(7, 1, 2)

    def test_in_unit_interval(self):
        draws = [corrupt_draw(3, i) for i in range(100)]
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_distinct_keys_decorrelated(self):
        draws = {corrupt_draw(3, i) for i in range(50)}
        assert len(draws) == 50

    def test_seed_matters(self):
        assert corrupt_draw(1, 0) != corrupt_draw(2, 0)


class TestFlipArray:
    def test_pure_and_nonmutating(self):
        a = np.arange(16, dtype=np.int64)
        before = a.copy()
        f1 = flip_array(a, 9, 4)
        f2 = flip_array(a, 9, 4)
        assert (a == before).all()  # original untouched
        assert (f1 == f2).all()  # same key, same flip

    def test_exactly_one_bit_differs(self):
        a = np.arange(16, dtype=np.int64)
        f = flip_array(a, 9, 4)
        xor = np.bitwise_xor(a, f)
        bits = sum(int(x).bit_count() for x in xor)
        assert bits == 1

    def test_float_arrays_flip_too(self):
        a = np.linspace(0.0, 1.0, 8)
        f = flip_array(a, 2, 0)
        assert f.tobytes() != a.tobytes()

    def test_zero_size_unchanged(self):
        a = np.zeros(0, dtype=np.int64)
        f = flip_array(a, 1, 0)
        assert f.size == 0 and f is not a


class TestFlipPayload:
    def test_array_leaf_preferred_over_protocol_scalars(self):
        """In a packed message the envelope ints (dst, origin, ttl) are
        assumed transport-protected; the *data* words get corrupted."""
        data = np.arange(6, dtype=np.int64)
        sub = (3, 1, data, 4, 0)  # scalars surround the array leaf
        out, changed = flip_payload(sub, 11, 0)
        assert changed
        assert out[0] == 3 and out[1] == 1 and out[3] == 4 and out[4] == 0
        assert np.asarray(out[2]).tobytes() != data.tobytes()

    def test_scalar_fallback_when_no_array(self):
        out, changed = flip_payload((7, "meta"), 11, 0)
        assert changed
        assert out != (7, "meta")

    def test_original_container_not_mutated(self):
        data = np.arange(4, dtype=np.int64)
        sub = [1, data]
        out, changed = flip_payload(sub, 5, 0)
        assert changed
        assert sub[0] == 1 and (sub[1] == np.arange(4)).all()
        assert isinstance(out, list)

    def test_tuple_stays_tuple(self):
        out, changed = flip_payload((1, np.zeros(2)), 5, 0)
        assert changed and isinstance(out, tuple)

    def test_empty_payloads_unchanged(self):
        for obj in ("", np.zeros(0), (), [], None):
            out, changed = flip_payload(obj, 1, 0)
            assert not changed

    def test_pure_in_key(self):
        data = np.arange(8, dtype=np.float64)
        a, _ = flip_payload((1, data), 3, 0, 7)
        b, _ = flip_payload((1, data), 3, 0, 7)
        assert np.asarray(a[1]).tobytes() == np.asarray(b[1]).tobytes()

    def test_checksum_catches_every_flip(self):
        data = np.arange(32, dtype=np.int64)
        payload = (0, 5, data, 2)
        for key in range(25):
            out, changed = flip_payload(payload, 13, key)
            assert changed
            assert payload_checksum(out) != payload_checksum(payload)
