"""Unit tests for jitter (straggler noise) and the rendezvous switch."""

import pytest

from repro.core import CommPattern, make_vpt, run_exchange
from repro.errors import SimMPIError
from repro.network import BGQ
from repro.simmpi import SimMPI, run_spmd


def pingpong(comm):
    if comm.rank == 0:
        comm.send(1, "x", words=100)
        return None
    yield comm.recv()
    return None


class TestJitter:
    def test_zero_jitter_is_baseline(self):
        a = run_spmd(2, pingpong, machine=BGQ)
        b = run_spmd(2, pingpong, machine=BGQ, jitter=0.0)
        assert a.clocks == b.clocks

    def test_jitter_slows_but_preserves_semantics(self):
        base = run_spmd(2, pingpong, machine=BGQ)
        noisy = run_spmd(2, pingpong, machine=BGQ, jitter=0.5, jitter_seed=1)
        assert noisy.makespan_us > base.makespan_us
        assert noisy.makespan_us < base.makespan_us * 1.5 + 1e-9

    def test_jitter_deterministic_per_seed(self):
        a = run_spmd(2, pingpong, machine=BGQ, jitter=0.3, jitter_seed=7)
        b = run_spmd(2, pingpong, machine=BGQ, jitter=0.3, jitter_seed=7)
        c = run_spmd(2, pingpong, machine=BGQ, jitter=0.3, jitter_seed=8)
        assert a.clocks == b.clocks
        assert a.clocks != c.clocks

    def test_negative_jitter_rejected(self):
        with pytest.raises(SimMPIError):
            SimMPI(2, machine=BGQ, jitter=-0.1)

    def test_exchange_correct_under_jitter(self):
        p = CommPattern.random(16, avg_degree=4, seed=0, words=3)
        res = run_exchange(p, make_vpt(16, 2))
        # deliveries must be identical with and without noise
        import numpy as np

        noisy = run_exchange(p, make_vpt(16, 2))
        norm = lambda d: [
            sorted((s, tuple(np.asarray(v))) for s, v in items) for items in d
        ]
        assert norm(res.delivered) == norm(noisy.delivered)


class TestRendezvous:
    def test_large_messages_pay_handshake(self):
        eager = run_spmd(2, pingpong, machine=BGQ)
        rdv = run_spmd(2, pingpong, machine=BGQ, rendezvous_threshold_words=50)
        assert rdv.makespan_us == pytest.approx(
            eager.makespan_us + BGQ.alpha_us
        )

    def test_small_messages_stay_eager(self):
        eager = run_spmd(2, pingpong, machine=BGQ)
        rdv = run_spmd(2, pingpong, machine=BGQ, rendezvous_threshold_words=101)
        assert rdv.makespan_us == pytest.approx(eager.makespan_us)

    def test_threshold_validated(self):
        with pytest.raises(SimMPIError):
            SimMPI(2, machine=BGQ, rendezvous_threshold_words=0)

    def test_rendezvous_threshold_flows_through_exchanges(self):
        # every original message is 600 words: with the threshold just
        # above, BL stays eager; just below, every BL send pays the
        # handshake and BL slows down
        p = CommPattern.random(32, avg_degree=2, hot_processes=2, seed=1, words=600)
        eager = run_exchange(
            p, scheme="direct", machine=BGQ, rendezvous_threshold_words=601
        ).run.makespan_us
        rdv = run_exchange(
            p, scheme="direct", machine=BGQ, rendezvous_threshold_words=600
        ).run.makespan_us
        assert rdv > eager

    def test_jitter_flows_through_stfw_exchange(self):
        p = CommPattern.random(16, avg_degree=3, seed=4, words=10)
        vpt = make_vpt(16, 2)
        calm = run_exchange(p, vpt, machine=BGQ).run.makespan_us
        noisy = run_exchange(
            p, vpt, machine=BGQ, jitter=0.4, jitter_seed=2
        ).run.makespan_us
        assert noisy > calm
