"""Unit tests for the fault-escalation policy layer (pure state machine)."""

import pytest

from repro.errors import SimMPIError
from repro.simmpi import (
    ESCALATION_LADDER,
    CircuitBreaker,
    EscalationPolicy,
    PolicyConfig,
)


class TestConfig:
    def test_ladder_ordering(self):
        assert ESCALATION_LADDER == (
            "healthy",
            "retry",
            "reroute",
            "quarantine",
            "shrink",
            "degraded",
        )

    def test_defaults_valid(self):
        cfg = PolicyConfig()
        assert cfg.suspect_after <= cfg.shrink_after

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout_us": 0.0},
            {"max_retries": -1},
            {"backoff": 0.5},
            {"jitter": -0.1},
            {"seed": -1},
            {"suspect_after": 0},
            {"suspect_after": 3, "shrink_after": 2},
            {"quarantine_after": 0},
            {"breaker_threshold": 0},
            {"breaker_cooldown": 0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(SimMPIError):
            PolicyConfig(**kwargs)

    def test_ft_knobs_shape(self):
        cfg = PolicyConfig(jitter=0.5, seed=7)
        knobs = cfg.ft_knobs(suspected=(9, 3), quarantined=(5,))
        assert knobs == {
            "timeout_us": cfg.timeout_us,
            "max_retries": cfg.max_retries,
            "backoff": cfg.backoff,
            "retry_jitter": 0.5,
            "retry_seed": 7,
            "suspected": (3, 9),
            "quarantined": (5,),
        }


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_faults(self):
        br = CircuitBreaker(threshold=3, cooldown=2)
        assert br.record(5, True) == "closed"
        assert br.record(5, True) == "closed"
        assert br.record(5, True) == "open"
        assert br.trips == 1
        assert br.open_peers() == (5,)
        assert not br.all_closed()

    def test_clean_epoch_resets_streak(self):
        br = CircuitBreaker(threshold=2, cooldown=1)
        br.record(1, True)
        br.record(1, False)
        br.record(1, True)
        assert br.state(1) == "closed"  # never two in a row
        assert br.trips == 0

    def test_open_ignores_observations_until_cooldown(self):
        br = CircuitBreaker(threshold=1, cooldown=2)
        br.record(4, True)
        assert br.state(4) == "open"
        assert br.record(4, False) == "open"  # no traffic, no opinion
        br.tick()
        assert br.state(4) == "open"
        br.tick()
        assert br.state(4) == "half_open"

    def test_half_open_clean_probe_closes(self):
        br = CircuitBreaker(threshold=1, cooldown=1)
        br.record(2, True)
        br.tick()
        assert br.record(2, False) == "closed"
        assert br.resets == 1
        assert br.all_closed()

    def test_half_open_faulty_probe_reopens(self):
        br = CircuitBreaker(threshold=1, cooldown=1)
        br.record(2, True)
        br.tick()
        assert br.record(2, True) == "open"
        assert br.reopens == 1
        br.tick()
        assert br.state(2) == "half_open"

    def test_forget_drops_all_state(self):
        br = CircuitBreaker(threshold=1, cooldown=5)
        br.record(3, True)
        br.forget(3)
        assert br.state(3) == "closed"
        assert br.open_peers() == ()


class TestEscalationPolicy:
    def cfg(self, **kw):
        base = dict(
            suspect_after=1,
            shrink_after=2,
            breaker_threshold=3,
            breaker_cooldown=2,
        )
        base.update(kw)
        return PolicyConfig(**base)

    def test_streak_promotes_to_suspect_then_shrink(self):
        pol = EscalationPolicy(self.cfg())
        pol.note_epoch(faulty_peers=[7])
        assert pol.suspects() == (7,)
        assert pol.to_shrink() == ()
        pol.note_epoch(faulty_peers=[7])
        assert pol.to_shrink() == (7,)

    def test_clean_epoch_resets_streak(self):
        pol = EscalationPolicy(self.cfg())
        pol.note_epoch(faulty_peers=[7])
        pol.note_epoch(clean_peers=[7])
        assert pol.suspects() == ()
        assert pol.to_shrink() == ()

    def test_faulty_wins_over_clean_same_epoch(self):
        pol = EscalationPolicy(self.cfg())
        pol.note_epoch(faulty_peers=[4], clean_peers=[4])
        assert pol.suspects() == (4,)

    def test_declare_dead_removes_everywhere(self):
        pol = EscalationPolicy(self.cfg())
        pol.note_epoch(faulty_peers=[3])
        pol.note_epoch(faulty_peers=[3])
        pol.declare_dead([3])
        assert pol.dead == {3}
        assert pol.suspects() == ()
        assert pol.to_shrink() == ()
        # dead peers are no longer observations
        pol.note_epoch(faulty_peers=[3])
        assert pol.suspects() == ()

    def test_open_breaker_peers_are_suspects(self):
        pol = EscalationPolicy(self.cfg(shrink_after=9))
        for _ in range(3):
            pol.note_epoch(faulty_peers=[6])
        assert pol.breaker.state(6) == "open"
        # streak cleared by the trip, but the open circuit still suspects
        pol.note_epoch(clean_peers=[6])
        assert 6 in pol.suspects()

    def test_ft_knobs_carry_current_suspects(self):
        pol = EscalationPolicy(self.cfg(seed=11))
        pol.note_epoch(faulty_peers=[2, 9])
        knobs = pol.ft_knobs()
        assert knobs["suspected"] == (2, 9)
        assert knobs["quarantined"] == ()
        assert knobs["retry_seed"] == 11


class TestQuarantine:
    def cfg(self, **kw):
        base = dict(
            suspect_after=1,
            shrink_after=2,
            quarantine_after=2,
            breaker_threshold=3,
            breaker_cooldown=2,
        )
        base.update(kw)
        return PolicyConfig(**base)

    def test_repeated_implication_quarantines(self):
        pol = EscalationPolicy(self.cfg())
        pol.note_epoch(corrupt_peers=[5])
        assert pol.quarantined() == ()
        pol.note_epoch(corrupt_peers=[5])
        assert pol.quarantined() == (5,)
        assert pol.to_quarantine() == (5,)

    def test_clean_epoch_resets_implication_streak(self):
        pol = EscalationPolicy(self.cfg())
        pol.note_epoch(corrupt_peers=[5])
        # an epoch where 5 delivered cleanly and was not implicated
        pol.note_epoch(clean_peers=[5])
        pol.note_epoch(corrupt_peers=[5])
        assert pol.quarantined() == ()  # never two implications in a row

    def test_quarantine_is_not_suspicion(self):
        pol = EscalationPolicy(self.cfg())
        pol.note_epoch(corrupt_peers=[5])
        pol.note_epoch(corrupt_peers=[5])
        assert pol.quarantined() == (5,)
        # a corrupt forwarder delivers its own traffic fine: no streak,
        # no suspicion, no shrink — it must stay a valid destination
        assert pol.suspects() == ()
        assert pol.to_shrink() == ()

    def test_quarantine_heals_after_clean_probe(self):
        pol = EscalationPolicy(self.cfg(breaker_cooldown=1))
        pol.note_epoch(corrupt_peers=[5])
        pol.note_epoch(corrupt_peers=[5])
        assert pol.quarantined() == (5,)
        # cooldown elapses: circuit half-open, quarantine lifted for
        # the probe epoch
        pol.note_epoch()
        assert pol.integrity.state(5) == "half_open"
        assert pol.quarantined() == ()
        # probe epoch passes clean (5 exercised, not implicated)
        pol.note_epoch(clean_peers=[5])
        assert pol.integrity.state(5) == "closed"
        assert pol.quarantined() == ()

    def test_reimplicated_probe_requarantines(self):
        pol = EscalationPolicy(self.cfg(breaker_cooldown=1))
        pol.note_epoch(corrupt_peers=[5])
        pol.note_epoch(corrupt_peers=[5])
        pol.note_epoch()  # cooldown -> half-open
        pol.note_epoch(corrupt_peers=[5])  # probe fails
        assert pol.quarantined() == (5,)

    def test_dead_peer_never_quarantined(self):
        pol = EscalationPolicy(self.cfg())
        pol.note_epoch(corrupt_peers=[5])
        pol.note_epoch(corrupt_peers=[5])
        pol.declare_dead([5])
        assert pol.quarantined() == ()
        pol.note_epoch(corrupt_peers=[5])
        pol.note_epoch(corrupt_peers=[5])
        assert pol.quarantined() == ()

    def test_ft_knobs_carry_quarantine(self):
        pol = EscalationPolicy(self.cfg())
        pol.note_epoch(corrupt_peers=[5], faulty_peers=[2])
        pol.note_epoch(corrupt_peers=[5])
        knobs = pol.ft_knobs()
        assert knobs["quarantined"] == (5,)
        assert 2 in knobs["suspected"]
