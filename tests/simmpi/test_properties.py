"""Property-based tests: the emulator delivers exactly what the plan says."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CommPattern, make_vpt, run_exchange


@st.composite
def small_patterns(draw):
    """Patterns on K in {8, 16, 32} with bounded message counts."""
    K = draw(st.sampled_from([8, 16, 32]))
    m = draw(st.integers(0, 40))
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, K - 1), st.integers(0, K - 1)),
            min_size=m,
            max_size=m,
        )
    )
    src, dst, size = [], [], []
    seen = set()
    for s, d in pairs:
        if s != d and (s, d) not in seen:
            seen.add((s, d))
            src.append(s)
            dst.append(d)
            size.append(draw(st.integers(1, 8)))
    return CommPattern.from_arrays(K, src, dst, size)


def delivered_set(result, K):
    out = set()
    for rank, items in enumerate(result.delivered):
        for src, payload in items:
            arr = np.asarray(payload)
            out.add((src, rank, arr.size, int(arr[0]) if arr.size else -1))
    return out


class TestExchangeProperties:
    @given(small_patterns(), st.data())
    @settings(max_examples=25, deadline=None)
    def test_stfw_delivers_exactly_the_pattern(self, pattern, data):
        lg = pattern.K.bit_length() - 1
        n = data.draw(st.integers(2, lg))
        res = run_exchange(pattern, make_vpt(pattern.K, n))
        want = {
            (int(s), int(d), int(w), int(s) * pattern.K + int(d))
            for s, d, w in zip(pattern.src, pattern.dst, pattern.size)
        }
        assert delivered_set(res, pattern.K) == want

    @given(small_patterns())
    @settings(max_examples=20, deadline=None)
    def test_direct_equals_stfw_deliveries(self, pattern):
        direct = run_exchange(pattern, scheme="direct")
        stfw = run_exchange(pattern, make_vpt(pattern.K, 2))
        assert delivered_set(direct, pattern.K) == delivered_set(stfw, pattern.K)

    @given(small_patterns(), st.data())
    @settings(max_examples=15, deadline=None)
    def test_traced_messages_respect_stage_bound(self, pattern, data):
        lg = pattern.K.bit_length() - 1
        n = data.draw(st.integers(2, lg))
        vpt = make_vpt(pattern.K, n)
        res = run_exchange(pattern, vpt, trace=True)
        sent = {}
        for rec in res.run.trace:
            sent.setdefault((rec.tag, rec.source), 0)
            sent[(rec.tag, rec.source)] += 1
        for (stage, _), count in sent.items():
            assert count <= vpt.dim_sizes[stage] - 1
