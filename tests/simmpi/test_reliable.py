"""Unit tests for the reliable delivery layer (ack/retry/dedup)."""

import pytest

from repro.errors import FaultError, SimMPIError
from repro.network import BGQ
from repro.simmpi import TIMEOUT, FaultPlan, ReliableComm, run_spmd


class TestHappyPath:
    def test_roundtrip_without_faults(self):
        def worker(comm):
            rc = ReliableComm(comm)
            if comm.rank == 0:
                ok = yield from rc.try_send(1, [1, 2, 3], tag=7)
                return (ok, rc.stats.sent, rc.stats.acked)
            got = yield from rc.recv(tag=7)
            return got

        res = run_spmd(2, worker, machine=BGQ)
        assert res.returns[0] == (True, 1, 1)
        assert res.returns[1] == (0, 7, [1, 2, 3])

    def test_symmetric_exchange_no_ack_deadlock(self):
        """Both ranks send simultaneously; ack-waiters service the wire."""

        def worker(comm):
            rc = ReliableComm(comm)
            other = 1 - comm.rank
            ok = yield from rc.try_send(other, f"from {comm.rank}", tag=0, words=2)
            got = yield from rc.recv(tag=0)
            return (ok, got[2])

        res = run_spmd(2, worker, machine=BGQ)
        assert res.returns == [(True, "from 1"), (True, "from 0")]

    def test_recv_timeout_returns_sentinel(self):
        def worker(comm):
            rc = ReliableComm(comm)
            got = yield from rc.recv(timeout_us=50.0)
            return got

        res = run_spmd(1, worker, machine=BGQ)
        assert res.returns[0] is TIMEOUT


class TestRetries:
    def test_lost_data_frame_is_retransmitted(self):
        """A one-shot outage eats the first DATA frame; the retry lands."""

        def worker(comm):
            rc = ReliableComm(comm, timeout_us=50.0, max_retries=3)
            if comm.rank == 0:
                ok = yield from rc.try_send(1, "payload", words=2)
                return (ok, rc.stats.retries)
            got = yield from rc.recv(timeout_us=1000.0)
            return got[2]

        from repro.simmpi import LinkOutage

        plan = FaultPlan(outages=(LinkOutage(0, 1, 0.0, 1.0),))
        res = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        assert res.returns[0] == (True, 1)
        assert res.returns[1] == "payload"

    def test_retry_exhaustion_returns_false_and_marks_dead(self):
        def worker(comm):
            rc = ReliableComm(comm, timeout_us=20.0, max_retries=2)
            if comm.rank == 0:
                ok = yield from rc.try_send(1, "void", words=1)
                return (ok, sorted(rc.dead), rc.stats.sent)
            yield comm.recv(timeout_us=500.0)  # raw engine recv: never acks
            return None

        plan = FaultPlan(link_drop={(0, 1): 1.0})
        res = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        ok, dead, sent = res.returns[0]
        assert ok is False
        assert dead == [1]
        assert sent == 3  # initial + 2 retries

    def test_second_send_to_dead_peer_fails_fast(self):
        def worker(comm):
            rc = ReliableComm(comm, timeout_us=20.0, max_retries=0)
            if comm.rank == 0:
                first = yield from rc.try_send(1, "a", words=1)
                sent_before = rc.stats.sent
                second = yield from rc.try_send(1, "b", words=1)
                return (first, second, rc.stats.sent - sent_before)
            yield comm.recv(timeout_us=200.0)
            return None

        plan = FaultPlan(link_drop={(0, 1): 1.0})
        res = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        assert res.returns[0] == (False, False, 0)  # no wire traffic at all

    def test_send_raises_structured_fault_error(self):
        """Satellite: FaultError carries rank/dest/tag/attempts."""

        def worker(comm):
            rc = ReliableComm(comm, timeout_us=20.0, max_retries=1)
            if comm.rank == 0:
                yield from rc.send(1, "x", tag=9, words=1)
                return "unreachable"
            yield comm.recv(timeout_us=500.0)
            return None

        plan = FaultPlan(link_drop={(0, 1): 1.0})
        with pytest.raises(FaultError) as ei:
            run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        exc = ei.value
        assert (exc.rank, exc.dest, exc.tag, exc.attempts) == (0, 1, 9, 2)
        assert "no ack from rank 1" in str(exc)


class TestDeduplication:
    def test_duplicate_delivered_exactly_once(self):
        """Satellite: engine-level duplication is suppressed by seqs."""

        def worker(comm):
            rc = ReliableComm(comm, timeout_us=100.0)
            if comm.rank == 0:
                ok = yield from rc.try_send(1, "once", words=1)
                return ok
            got = []
            while True:
                m = yield from rc.recv(timeout_us=300.0)
                if m is TIMEOUT:
                    return (got, rc.stats.duplicates_suppressed)
                got.append(m[2])

        plan = FaultPlan(link_duplicate={(0, 1): 1.0})
        res = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        got, suppressed = res.returns[1]
        assert got == ["once"]
        assert suppressed >= 1

    def test_retransmission_after_lost_ack_is_suppressed(self):
        """Data arrives, the ack dies, the sender retries: the receiver
        re-acks but must not deliver the payload twice."""

        def worker(comm):
            rc = ReliableComm(comm, timeout_us=50.0, max_retries=3)
            if comm.rank == 0:
                ok = yield from rc.try_send(1, "precious", words=1)
                return (ok, rc.stats.retries)
            got = []
            while True:
                m = yield from rc.recv(timeout_us=400.0)
                if m is TIMEOUT:
                    return (got, rc.stats.duplicates_suppressed)
                got.append(m[2])

        from repro.simmpi import LinkOutage

        # eat only the first ack (1 -> 0, sent a few us in after the
        # data's flight time), never the data
        plan = FaultPlan(outages=(LinkOutage(1, 0, 0.0, 10.0),))
        res = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        ok, retries = res.returns[0]
        got, suppressed = res.returns[1]
        assert ok is True and retries >= 1
        assert got == ["precious"]
        assert suppressed >= 1


class TestArguments:
    def test_self_send_rejected(self):
        def worker(comm):
            rc = ReliableComm(comm)
            yield from rc.try_send(0, "x", words=1)

        with pytest.raises(SimMPIError, match="self-send"):
            run_spmd(1, worker)

    def test_bad_constructor_args(self):
        def make(**kw):
            def worker(comm):
                ReliableComm(comm, **kw)
                return None
                yield  # pragma: no cover

            return worker

        with pytest.raises(SimMPIError, match="timeout_us"):
            run_spmd(1, make(timeout_us=0.0))
        with pytest.raises(SimMPIError, match="max_retries"):
            run_spmd(1, make(max_retries=-1))
        with pytest.raises(SimMPIError, match="backoff"):
            run_spmd(1, make(backoff=0.5))
        with pytest.raises(SimMPIError, match="header_words"):
            run_spmd(1, make(header_words=-1))

    def test_logical_tag_filter(self):
        def worker(comm):
            rc = ReliableComm(comm)
            if comm.rank == 0:
                yield from rc.try_send(1, "a", tag=1, words=1)
                yield from rc.try_send(1, "b", tag=2, words=1)
                return None
            m2 = yield from rc.recv(tag=2)
            m1 = yield from rc.recv(tag=1)
            return (m1[2], m2[2])

        res = run_spmd(2, worker, machine=BGQ)
        assert res.returns[1] == ("a", "b")


class TestStashOrdering:
    """Satellite regression: a wildcard recv after tagged recvs must
    hand back stashed frames in each source's send (seq) order."""

    def test_wildcard_after_tagged_preserves_seq_order(self):
        """Interleaved tags: a tagged recv skips over two stashed
        frames of another tag; the wildcard recvs that follow must
        return them oldest-first."""

        def worker(comm):
            rc = ReliableComm(comm)
            if comm.rank == 0:
                yield from rc.try_send(1, "early", tag=7, words=1)  # seq 0
                yield from rc.try_send(1, "late", tag=7, words=1)  # seq 1
                yield from rc.try_send(1, "mid", tag=8, words=1)  # seq 2
                return None
            m_b = yield from rc.recv(tag=8)  # stashes seq 0 and seq 1
            m1 = yield from rc.recv()
            m2 = yield from rc.recv()
            return (m_b[2], m1[2], m2[2])

        res = run_spmd(2, worker, machine=BGQ)
        assert res.returns[1] == ("mid", "early", "late")

    def test_out_of_order_acceptance_is_resorted(self):
        """Frames accepted out of seq order (a retransmission landing
        after a younger frame) are stashed back into per-source order."""
        from repro.simmpi.integrity import payload_checksum
        from repro.simmpi.reliable import _DATA

        def frame(seq, tag, payload):
            return (_DATA, seq, tag, payload, payload_checksum(payload))

        def worker(comm):
            rc = ReliableComm(comm)
            if comm.rank == 1:
                # simulate wire arrivals seq 2, 0, 1 (acks go to rank 0,
                # which never receives them — eager sends don't block)
                rc._accept_data(0, frame(2, 7, "late"))
                rc._accept_data(0, frame(0, 7, "early"))
                rc._accept_data(0, frame(1, 8, "mid"))
                m_b = yield from rc.recv(tag=8)
                m1 = yield from rc.recv()
                m2 = yield from rc.recv()
                return (m_b[2], m1[2], m2[2])
            return None
            yield  # pragma: no cover

        res = run_spmd(2, worker, machine=BGQ)
        assert res.returns[1] == ("mid", "early", "late")

    def test_interleaved_sources_keep_their_own_order(self):
        def worker(comm):
            rc = ReliableComm(comm)
            if comm.rank < 2:
                for i in range(3):
                    yield from rc.try_send(2, (comm.rank, i), tag=1, words=1)
                return None
            got = []
            for _ in range(6):
                m = yield from rc.recv(tag=1)
                got.append(m[2])
            return got

        res = run_spmd(3, worker, machine=BGQ)
        per_src = {0: [], 1: []}
        for src, i in res.returns[2]:
            per_src[src].append(i)
        assert per_src == {0: [0, 1, 2], 1: [0, 1, 2]}


class TestStashInterleavings:
    """Regressions: stash handling under duplicate delivery + timed recv.

    Each scenario interleaves duplicated or delayed DATA frames with
    tagged/wildcard/timed receives; the stash must deliver every frame
    exactly once, in per-source seq order, with its correct tag.
    """

    def test_duplicate_stashed_during_wrong_tag_timeout(self):
        """A duplicated tag-5 frame arrives during a timed recv for tag 9:
        the tag-9 recv times out, the stashed frame is delivered exactly
        once to a later tag-5 recv, and a second tag-5 recv times out."""

        def worker(comm):
            rc = ReliableComm(comm, timeout_us=200.0)
            if comm.rank == 0:
                ok = yield from rc.try_send(1, "payload-A", tag=5, words=4)
                return ok
            got_b = yield from rc.recv(tag=9, timeout_us=100.0)
            got_a1 = yield from rc.recv(tag=5, timeout_us=500.0)
            got_a2 = yield from rc.recv(tag=5, timeout_us=100.0)
            return (got_b, got_a1, got_a2, rc.stats.duplicates_suppressed)

        plan = FaultPlan(default_duplicate=1.0, seed=3)
        res = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        got_b, got_a1, got_a2, dups = res.returns[1]
        assert got_b is TIMEOUT
        assert got_a1 == (0, 5, "payload-A")
        assert got_a2 is TIMEOUT  # the duplicate must not deliver twice
        assert dups >= 1

    def test_wildcard_pops_stashed_frame_once(self):
        def worker(comm):
            rc = ReliableComm(comm, timeout_us=200.0)
            if comm.rank == 0:
                ok = yield from rc.try_send(1, "X", tag=7, words=2)
                return ok
            t1 = yield from rc.recv(tag=3, timeout_us=120.0)  # wrong tag: stash
            wild = yield from rc.recv(timeout_us=300.0)  # wildcard pops it
            t2 = yield from rc.recv(timeout_us=80.0)  # nothing left
            return (t1, wild, t2)

        plan = FaultPlan(default_duplicate=1.0, seed=11)
        res = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        t1, wild, t2 = res.returns[1]
        assert t1 is TIMEOUT
        assert wild == (0, 7, "X")
        assert t2 is TIMEOUT

    def test_out_of_order_tags_with_interleaved_timeout(self):
        """Tagged receives out of send order, with duplication and an
        interleaved timeout, must preserve per-tag payload order."""

        def worker(comm):
            rc = ReliableComm(comm, timeout_us=200.0)
            if comm.rank == 0:
                yield from rc.send(1, "first", tag=1, words=2)
                yield from rc.send(1, "second", tag=2, words=2)
                yield from rc.send(1, "third", tag=1, words=2)
                return True
            g2 = yield from rc.recv(tag=2, timeout_us=800.0)
            t = yield from rc.recv(tag=9, timeout_us=60.0)
            g1a = yield from rc.recv(tag=1, timeout_us=800.0)
            g1b = yield from rc.recv(tag=1, timeout_us=800.0)
            return (g2, t, g1a, g1b)

        plan = FaultPlan(default_duplicate=1.0, seed=5)
        res = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        g2, t, g1a, g1b = res.returns[1]
        assert g2 == (0, 2, "second")
        assert t is TIMEOUT
        assert g1a == (0, 1, "first")
        assert g1b == (0, 1, "third")

    def test_retransmit_after_outage_keeps_seq_order(self):
        """Drop-then-retransmit while a later frame is already stashed:
        the retry lands after 'late' on the wire, but delivery must
        still follow per-source seq order."""
        from repro.simmpi import LinkOutage

        def worker(comm):
            rc = ReliableComm(comm, timeout_us=50.0, max_retries=4)
            if comm.rank == 0:
                yield from rc.send(1, "early", tag=1, words=2)
                yield from rc.send(1, "late", tag=1, words=2)
                return True
            t = yield from rc.recv(tag=9, timeout_us=300.0)  # stashes both
            g1 = yield from rc.recv(tag=1, timeout_us=800.0)
            g2 = yield from rc.recv(tag=1, timeout_us=800.0)
            return (t, g1, g2)

        plan = FaultPlan(outages=[LinkOutage(src=0, dst=1, start_us=0.0, end_us=4.0)])
        res = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        t, g1, g2 = res.returns[1]
        assert t is TIMEOUT
        assert g1 == (0, 1, "early")
        assert g2 == (0, 1, "late")

    def test_late_arrival_stays_queued_for_reliable_layer(self):
        """A frame whose virtual arrival is beyond the recv deadline must
        not be consumed by that recv: the first timed recv returns
        TIMEOUT at its own deadline and a later recv gets the frame."""

        def worker(comm):
            rc = ReliableComm(comm, timeout_us=50_000.0)
            if comm.rank == 0:
                ok = yield from rc.try_send(1, "big", tag=7, words=10_000_000)
                return ok
            got = yield from rc.recv(tag=7, timeout_us=5.0)
            t_first = comm.time
            late = yield from rc.recv(tag=7, timeout_us=1e9)
            return (got, t_first, late[2])

        res = run_spmd(2, worker, machine=BGQ)
        got, t_first, late = res.returns[1]
        assert got is TIMEOUT
        assert t_first < 100.0  # timed out at its own deadline, not arrival
        assert late == "big"


class TestJitterDeterminism:
    """Seed-deterministic retry jitter and the recorded retry schedule."""

    def _retry_run(self, *, jitter, seed):
        """One send whose first two DATA frames are eaten by an outage."""

        def worker(comm):
            rc = ReliableComm(
                comm, timeout_us=50.0, max_retries=4, jitter=jitter, seed=seed
            )
            if comm.rank == 0:
                ok = yield from rc.try_send(1, "payload", words=2)
                return (ok, list(rc.stats.retry_schedule))
            got = yield from rc.recv(timeout_us=5000.0)
            return got[2]

        from repro.simmpi import LinkOutage

        plan = FaultPlan(outages=(LinkOutage(0, 1, 0.0, 120.0),))
        res = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        return res.returns

    def test_retry_schedule_is_recorded(self):
        (ok, schedule), payload = self._retry_run(jitter=0.25, seed=3)
        assert ok is True
        assert payload == "payload"
        assert len(schedule) >= 1
        for dest, seq, attempt, t in schedule:
            assert dest == 1
            assert attempt >= 1
            assert t > 0.0
        attempts = [a for _, _, a, _ in schedule]
        assert attempts == sorted(attempts)

    def test_same_seed_same_retry_timeline(self):
        a = self._retry_run(jitter=0.25, seed=3)
        b = self._retry_run(jitter=0.25, seed=3)
        assert a == b  # byte-for-byte identical timelines

    def test_different_seed_different_timeline(self):
        (_, sched_a), _ = self._retry_run(jitter=0.25, seed=3)
        (_, sched_b), _ = self._retry_run(jitter=0.25, seed=4)
        assert [t for *_, t in sched_a] != [t for *_, t in sched_b]

    def test_zero_jitter_matches_plain_backoff(self):
        """jitter=0 must reproduce the unjittered deadline arithmetic."""
        (_, sched_plain), _ = self._retry_run(jitter=0.0, seed=3)

        def worker(comm):
            rc = ReliableComm(comm, timeout_us=50.0, max_retries=4)
            if comm.rank == 0:
                ok = yield from rc.try_send(1, "payload", words=2)
                return (ok, list(rc.stats.retry_schedule))
            got = yield from rc.recv(timeout_us=5000.0)
            return got[2]

        from repro.simmpi import LinkOutage

        plan = FaultPlan(outages=(LinkOutage(0, 1, 0.0, 120.0),))
        res = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        assert res.returns[0][1] == sched_plain

    def test_jitter_function_is_pure_and_bounded(self):
        from repro.simmpi import retry_jitter

        vals = [retry_jitter(5, 0, 1, 2, a) for a in range(1, 6)]
        assert vals == [retry_jitter(5, 0, 1, 2, a) for a in range(1, 6)]
        assert all(0.0 <= v < 1.0 for v in vals)
        assert len(set(vals)) > 1  # attempts decorrelated
        assert retry_jitter(5, 0, 1, 2, 1) != retry_jitter(6, 0, 1, 2, 1)

    def test_negative_jitter_rejected(self):
        def worker(comm):
            ReliableComm(comm, jitter=-0.5)
            return None
            yield

        with pytest.raises(SimMPIError):
            run_spmd(1, worker, machine=BGQ)


class TestChecksumIntegrity:
    """Tentpole: content checksums on DATA frames catch in-transit flips."""

    def test_corrupt_frame_nacked_never_delivered(self):
        """Every attempt is flipped (p=1), so the transfer can never
        land: the receiver NACKs each corrupt frame and delivers
        nothing; the sender sees NACKs and eventually gives up."""
        import numpy as np

        def worker(comm):
            rc = ReliableComm(comm, timeout_us=100.0, max_retries=2)
            if comm.rank == 0:
                ok = yield from rc.try_send(
                    1, np.arange(16, dtype=np.int64), words=16
                )
                return (ok, rc.stats.nacks_received)
            got = []
            while True:
                m = yield from rc.recv(timeout_us=800.0)
                if m is TIMEOUT:
                    return (
                        got,
                        rc.stats.corrupt_frames,
                        rc.stats.nacks_sent,
                        rc.stats.delivered,
                    )
                got.append(m)

        plan = FaultPlan(link_flip={(0, 1): 1.0}, seed=5)
        res = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        ok, nacks_received = res.returns[0]
        got, corrupt, nacks_sent, delivered = res.returns[1]
        assert ok is False  # never acked: all three attempts corrupt
        assert got == [] and delivered == 0
        assert corrupt == 3 and nacks_sent == 3
        assert nacks_received >= 1

    def test_transient_flip_recovered_by_retransmit(self):
        """Only the first attempt's window is corrupted (outage-style
        one-shot via a flipped link that also drops acks is hard to
        stage; instead flip with p=1 on a link the retry avoids by
        virtue of the per-event corrupt draw being keyed on time)."""
        import numpy as np

        sent = np.arange(32, dtype=np.int64)

        def worker(comm):
            rc = ReliableComm(comm, timeout_us=80.0, max_retries=6)
            if comm.rank == 0:
                ok = yield from rc.try_send(1, sent, words=32)
                return (ok, rc.stats.retries)
            m = yield from rc.recv(timeout_us=5000.0)
            if m is TIMEOUT:
                return None
            return (np.asarray(m[2]).tobytes(), rc.stats.corrupt_frames)

        # p=0.5: seeded per-event draws corrupt some attempts, not all
        plan = FaultPlan(link_flip={(0, 1): 0.5}, seed=12)
        res = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        ok, retries = res.returns[0]
        payload, corrupt = res.returns[1]
        assert ok is True
        assert payload == sent.tobytes()  # delivered copy is pristine
        assert corrupt >= 1 or retries == 0

    def test_malformed_frame_dropped_not_crash(self):
        """Regression: an envelope-corrupted frame (wrong arity or a
        flipped kind word, e.g. a corrupted ACK) is counted and dropped
        instead of raising on unpack."""

        def worker(comm):
            rc = ReliableComm(comm)
            rc._accept_data(0, (7, 3))  # flipped-ACK shape
            rc._accept_data(0, ("junk",))
            return (rc.stats.corrupt_frames, len(rc._stash))
            yield  # pragma: no cover

        res = run_spmd(2, worker, machine=BGQ)
        assert res.returns[0] == (2, 0)


class TestWatermarkDedup:
    """Satellite: the dedup window is a per-source watermark + small
    over-set, not an ever-growing set of every seq ever seen."""

    def test_in_order_stream_keeps_empty_overset(self):
        def worker(comm):
            rc = ReliableComm(comm)
            if comm.rank == 0:
                for i in range(50):
                    yield from rc.try_send(1, i, tag=1, words=1)
                return None
            got = []
            for _ in range(50):
                m = yield from rc.recv(tag=1)
                got.append(m[2])
            return (got, rc.dedup_backlog(0))

        res = run_spmd(2, worker, machine=BGQ)
        got, backlog = res.returns[1]
        assert got == list(range(50))
        assert backlog == 0  # watermark swallowed every seq

    def test_reordered_seqs_collapse_into_watermark(self):
        from repro.simmpi.integrity import payload_checksum
        from repro.simmpi.reliable import _DATA

        def frame(seq, payload):
            return (_DATA, seq, 0, payload, payload_checksum(payload))

        def worker(comm):
            rc = ReliableComm(comm)
            # arrival order 2, 0, 1: the over-set briefly holds {2},
            # then the contiguous prefix collapses to watermark 3
            rc._accept_data(0, frame(2, "c"))
            mid = rc.dedup_backlog(0)
            rc._accept_data(0, frame(0, "a"))
            rc._accept_data(0, frame(1, "b"))
            return (mid, rc.dedup_backlog(0), rc._seen[0][0])
            yield  # pragma: no cover

        res = run_spmd(2, worker, machine=BGQ)
        assert res.returns[1] == (1, 0, 3)

    def test_dup_and_reorder_across_outage_window(self):
        """Satellite: the same seq arrives duplicated AND reordered
        around an outage; every payload is delivered exactly once, in
        seq order, and the dedup state stays watermark-bounded."""

        def worker(comm):
            rc = ReliableComm(comm, timeout_us=60.0, max_retries=6)
            if comm.rank == 0:
                for i in range(4):
                    ok = yield from rc.try_send(1, f"m{i}", tag=2, words=1)
                    assert ok
                return rc.stats.retries
            got = []
            while True:
                m = yield from rc.recv(tag=2, timeout_us=1500.0)
                if m is TIMEOUT:
                    return (
                        got,
                        rc.stats.duplicates_suppressed,
                        rc.dedup_backlog(0),
                    )
                got.append(m[2])

        from repro.simmpi import LinkOutage

        # duplicate every frame; an outage window eats mid-exchange
        # traffic so retransmissions interleave with younger frames
        plan = FaultPlan(
            default_duplicate=1.0,
            outages=(LinkOutage(0, 1, 0.0, 150.0),),
            seed=6,
        )
        res = run_spmd(2, worker, machine=BGQ, fault_plan=plan)
        retries = res.returns[0]
        got, suppressed, backlog = res.returns[1]
        assert got == ["m0", "m1", "m2", "m3"]  # once each, in order
        assert suppressed >= 1
        assert backlog == 0  # all seqs collapsed into the watermark
        assert retries >= 1
