"""Unit tests for the simulated MPI runtime."""

import pytest

from repro.errors import DeadlockError, SimMPIError
from repro.network import BGQ
from repro.simmpi import ANY_SOURCE, ANY_TAG, SimMPI, run_spmd


class TestBasicSendRecv:
    def test_ping(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "hello", words=1)
                return "sent"
            else:
                src, tag, payload = yield comm.recv()
                return (src, payload)

        res = run_spmd(2, worker)
        assert res.returns == ["sent", (0, "hello")]

    def test_ping_pong(self):
        def worker(comm):
            other = 1 - comm.rank
            if comm.rank == 0:
                comm.send(other, 41, words=1)
                _, _, v = yield comm.recv(source=other)
                return v
            else:
                _, _, v = yield comm.recv(source=other)
                comm.send(other, v + 1, words=1)
                return v

        res = run_spmd(2, worker)
        assert res.returns == [42, 41]

    def test_recv_by_source_filter(self):
        def worker(comm):
            if comm.rank in (0, 1):
                comm.send(2, comm.rank * 100, words=1)
                return None
            got = []
            # explicitly receive rank 1 first even if 0's arrived earlier
            src, _, v = yield comm.recv(source=1)
            got.append((src, v))
            src, _, v = yield comm.recv(source=0)
            got.append((src, v))
            return got

        res = run_spmd(3, worker)
        assert res.returns[2] == [(1, 100), (0, 0)]

    def test_recv_by_tag_filter(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "a", tag=7, words=1)
                comm.send(1, "b", tag=9, words=1)
                return None
            _, tag, v = yield comm.recv(tag=9)
            assert (tag, v) == (9, "b")
            _, tag, v = yield comm.recv(tag=ANY_TAG)
            return (tag, v)

        res = run_spmd(2, worker)
        assert res.returns[1] == (7, "a")

    def test_fifo_per_source(self):
        def worker(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(1, i, words=1)
                return None
            out = []
            for _ in range(5):
                _, _, v = yield comm.recv(source=0)
                out.append(v)
            return out

        res = run_spmd(2, worker)
        assert res.returns[1] == [0, 1, 2, 3, 4]

    def test_any_source(self):
        def worker(comm):
            if comm.rank:
                comm.send(0, comm.rank, words=1)
                return None
            seen = set()
            for _ in range(comm.size - 1):
                src, _, v = yield comm.recv(source=ANY_SOURCE)
                assert src == v
                seen.add(v)
            return seen

        res = run_spmd(8, worker)
        assert res.returns[0] == set(range(1, 8))

    def test_any_source_matches_earliest_arrival(self):
        # Two senders whose virtual arrival order inverts their engine
        # posting order: rank 1 runs first (posting "late" first) but
        # has a huge clock from earlier sends, while rank 2 posts
        # "early" afterwards with a near-zero clock.  A wildcard recv
        # must deliver "early" (earliest arrive_time), not the first
        # posted envelope.
        def worker(comm):
            if comm.rank == 1:
                for _ in range(8):
                    comm.send(3, "spam", words=500)  # inflate rank 1's clock
                comm.send(0, "late", words=1)
                return None
            if comm.rank == 2:
                comm.send(0, "early", words=1)
                return None
            if comm.rank == 3:
                for _ in range(8):
                    yield comm.recv(source=1)
                return None
            got = []
            for _ in range(2):
                src, _, v = yield comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
                got.append((src, v))
            return got

        res = run_spmd(4, worker, machine=BGQ, trace=True)
        assert res.returns[0] == [(2, "early"), (1, "late")]
        # sanity: the arrival order really was inverted vs posting order
        arrivals = {rec.source: rec.arrive_time for rec in res.trace if rec.dest == 0}
        assert arrivals[2] < arrivals[1]

    def test_any_tag_from_source_is_fifo(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "first", tag=5, words=1)
                comm.send(1, "second", tag=3, words=1)
                return None
            out = []
            for _ in range(2):
                _, tag, v = yield comm.recv(source=0, tag=ANY_TAG)
                out.append((tag, v))
            return out

        res = run_spmd(2, worker, machine=BGQ)
        assert res.returns[1] == [(5, "first"), (3, "second")]

    def test_wildcard_ties_break_by_posting_order(self):
        # without a machine all arrivals are at t=0: ties must fall
        # back to engine posting order (deterministic, rank order here)
        def worker(comm):
            if comm.rank:
                comm.send(0, comm.rank, words=1)
                return None
            out = []
            for _ in range(comm.size - 1):
                src, _, _ = yield comm.recv()
                out.append(src)
            return out

        res = run_spmd(5, worker)
        assert res.returns[0] == [1, 2, 3, 4]

    def test_plain_return_rank(self):
        # ranks that do no blocking communication may return a value
        def worker(comm):
            return comm.rank * 2

        res = run_spmd(4, worker)
        assert res.returns == [0, 2, 4, 6]

    def test_send_to_invalid_rank(self):
        def worker(comm):
            comm.send(99, "x", words=1)
            return None

        with pytest.raises(SimMPIError):
            run_spmd(2, worker)

    def test_unsized_payload_needs_words(self):
        def worker(comm):
            comm.send(0, 123)  # int has no len()
            return None

        with pytest.raises(SimMPIError):
            run_spmd(2, worker)

    def test_invalid_yield_rejected(self):
        def worker(comm):
            yield "not an op"

        with pytest.raises(SimMPIError):
            run_spmd(1, worker)

    def test_K_must_be_positive(self):
        with pytest.raises(SimMPIError):
            SimMPI(0)


class TestDeadlockDetection:
    def test_recv_with_no_sender(self):
        def worker(comm):
            yield comm.recv()

        with pytest.raises(DeadlockError) as err:
            run_spmd(2, worker)
        assert "blocked on recv" in str(err.value)

    def test_mismatched_tag_deadlocks(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "x", tag=1, words=1)
                return None
            yield comm.recv(tag=2)

        with pytest.raises(DeadlockError):
            run_spmd(2, worker)

    def test_partial_barrier_deadlocks(self):
        def worker(comm):
            if comm.rank == 0:
                return None  # exits without the barrier
            yield comm.barrier()

        with pytest.raises(DeadlockError) as err:
            run_spmd(2, worker)
        assert "exited" in str(err.value)

    def test_mixed_collectives_deadlock(self):
        def worker(comm):
            if comm.rank == 0:
                yield comm.barrier()
            else:
                yield comm.allgather(1)

        with pytest.raises(DeadlockError):
            run_spmd(2, worker)

    def test_deadlock_dump_names_allreduce_and_bcast(self):
        def worker(comm):
            if comm.rank == 0:
                yield comm.allreduce(1, op="max", words=3)
            else:
                yield comm.bcast(None, root=1, words=2)

        with pytest.raises(DeadlockError) as err:
            run_spmd(2, worker)
        text = str(err.value)
        assert "rank 0: blocked on allreduce(op=max, words=3)" in text
        assert "rank 1: blocked on bcast(root=1, words=2)" in text

    def test_deadlock_dump_names_reduce_and_alltoall(self):
        def worker(comm):
            if comm.rank == 0:
                yield comm.reduce(1, root=0, op="sum", words=1)
            else:
                yield comm.alltoall([0, 0], words=4)

        with pytest.raises(DeadlockError) as err:
            run_spmd(2, worker)
        text = str(err.value)
        assert "reduce(op=sum, root=0, words=1)" in text
        assert "alltoall(words=4)" in text

    def test_deadlock_dump_recv_shows_wildcards(self):
        def worker(comm):
            yield comm.recv()

        with pytest.raises(DeadlockError) as err:
            run_spmd(1, worker)
        assert "recv(source=ANY_SOURCE, tag=ANY_TAG), mailbox=0" in str(err.value)


class TestCollectives:
    def test_barrier_all_pass(self):
        def worker(comm):
            yield comm.barrier()
            return "done"

        res = run_spmd(4, worker)
        assert res.returns == ["done"] * 4

    def test_allgather(self):
        def worker(comm):
            vals = yield comm.allgather(comm.rank**2)
            return vals

        res = run_spmd(4, worker)
        assert res.returns == [[0, 1, 4, 9]] * 4

    def test_barrier_then_messages(self):
        def worker(comm):
            yield comm.barrier()
            if comm.rank == 0:
                comm.send(1, "after", words=1)
                return None
            _, _, v = yield comm.recv()
            return v

        res = run_spmd(2, worker)
        assert res.returns[1] == "after"


class TestVirtualTime:
    def test_no_machine_zero_clocks(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "x", words=100)
                return None
            yield comm.recv()
            return None

        res = run_spmd(2, worker)
        assert res.makespan_us == 0.0

    def test_send_charges_alpha_beta(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "x", words=100)
                return None
            yield comm.recv()
            return None

        res = run_spmd(2, worker, machine=BGQ)
        # sender paid alpha + 100*beta; same-node so no hop cost
        expected_send = BGQ.alpha_us + 100 * BGQ.beta_us_per_word
        assert res.clocks[0] == pytest.approx(expected_send)
        assert res.clocks[1] > res.clocks[0]  # receiver waited + recv cost

    def test_serial_sends_accumulate(self):
        def worker(comm):
            if comm.rank == 0:
                for d in range(1, comm.size):
                    comm.send(d, "x", words=1)
                return None
            yield comm.recv()
            return None

        res = run_spmd(8, worker, machine=BGQ)
        assert res.clocks[0] >= 7 * BGQ.alpha_us

    def test_receiver_waits_for_arrival(self):
        def worker(comm):
            if comm.rank == 0:
                # rank 0 does lots of work first (many self-charged sends)
                for _ in range(10):
                    comm.send(1, "spam", words=1)
                comm.send(1, "last", words=1)
                return None
            out = None
            for _ in range(11):
                _, _, out = yield comm.recv()
            return out

        res = run_spmd(2, worker, machine=BGQ)
        assert res.returns[1] == "last"
        assert res.clocks[1] >= res.clocks[0]

    def test_barrier_aligns_clocks(self):
        def worker(comm):
            if comm.rank == 0:
                for _ in range(5):
                    comm.send(1, "x", words=1)
            if comm.rank == 1:
                for _ in range(5):
                    yield comm.recv()
            yield comm.barrier()
            return None

        res = run_spmd(4, worker, machine=BGQ)
        assert len(set(round(c, 9) for c in res.clocks)) == 1

    def test_makespan_is_max_clock(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "x", words=10_000)
                return None
            if comm.rank == 1:
                yield comm.recv()
            return None

        res = run_spmd(4, worker, machine=BGQ)
        assert res.makespan_us == pytest.approx(max(res.clocks))


class TestTracing:
    def test_trace_records_messages(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "x", tag=3, words=5)
                return None
            yield comm.recv()
            return None

        res = run_spmd(2, worker, trace=True)
        assert len(res.trace) == 1
        rec = res.trace[0]
        assert (rec.source, rec.dest, rec.tag, rec.words) == (0, 1, 3, 5)

    def test_trace_off_by_default(self):
        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "x", words=1)
                return None
            yield comm.recv()
            return None

        assert run_spmd(2, worker).trace == []

    def test_mapping_without_machine_rejected(self):
        with pytest.raises(SimMPIError):
            SimMPI(4, mapping=[0, 0, 0, 0])


class TestDeterminism:
    def test_identical_runs(self):
        def worker(comm):
            rotated = (comm.rank + 1) % comm.size
            comm.send(rotated, comm.rank, words=1)
            _, _, v = yield comm.recv()
            vals = yield comm.allgather(v)
            return tuple(vals)

        a = run_spmd(16, worker, machine=BGQ, trace=True)
        b = run_spmd(16, worker, machine=BGQ, trace=True)
        assert a.returns == b.returns
        assert a.clocks == b.clocks
        assert a.trace == b.trace


class TestRecvDeadline:
    """Regressions: a timed recv must not deliver past its deadline.

    A message whose virtual arrival time lies beyond the receiver's
    deadline is not arrivable within the wait — the recv must return
    TIMEOUT *at the deadline* and leave the envelope queued for a later
    receive.
    """

    def test_late_arrival_times_out_and_stays_queued(self):
        from repro.simmpi import TIMEOUT

        def worker(comm):
            if comm.rank == 0:
                # huge message -> arrival far beyond the 5us deadline
                comm.send(1, "big", tag=1, words=10_000_000)
                return True
            got = yield comm.recv(tag=1, timeout_us=5.0)
            t_timeout = comm.time
            src, tag, late = yield comm.recv(tag=1)
            return (got, t_timeout, late, comm.time)

        res = run_spmd(2, worker, machine=BGQ)
        got, t_timeout, late, t_deliver = res.returns[1]
        assert got is TIMEOUT
        assert t_timeout == pytest.approx(5.0)  # woke at the deadline
        assert late == "big"
        assert t_deliver > t_timeout

    def test_message_inside_deadline_still_delivers(self):
        from repro.simmpi import TIMEOUT

        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "small", tag=1, words=1)
                return True
            got = yield comm.recv(tag=1, timeout_us=1e6)
            return got

        res = run_spmd(2, worker, machine=BGQ)
        assert res.returns[1][2] == "small"

    def test_deadline_respected_for_already_queued_message(self):
        """The bound applies on the posting path too: a frame already in
        the mailbox but arriving after the deadline must not match."""
        from repro.simmpi import TIMEOUT

        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "slow", tag=3, words=10_000_000)
                return True
            # long idle first, so the envelope is queued (not in flight)
            # when the timed recv is posted — still not arrivable
            yield comm.recv(tag=99, timeout_us=1.0)
            got = yield comm.recv(tag=3, timeout_us=2.0)
            src, tag, late = yield comm.recv(tag=3)
            return (got, late)

        res = run_spmd(2, worker, machine=BGQ)
        got, late = res.returns[1]
        assert got is TIMEOUT
        assert late == "slow"

    def test_wildcard_timed_recv_honors_deadline(self):
        from repro.simmpi import TIMEOUT

        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "bulk", words=10_000_000)
                return True
            got = yield comm.recv(source=ANY_SOURCE, tag=ANY_TAG, timeout_us=4.0)
            src, tag, late = yield comm.recv()
            return (got, late)

        res = run_spmd(2, worker, machine=BGQ)
        got, late = res.returns[1]
        assert got is TIMEOUT
        assert late == "bulk"
