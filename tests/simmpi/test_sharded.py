"""Cross-engine equivalence and API tests for the sharded backend.

The contract under test: ``SimMPI(K, engine="sharded", workers=N)``
is **bit-identical** to the default event engine — same ``RunResult``
(returns, clocks, trace, crashed, fault events), same chrome-trace
bytes — for every supported scenario, at every worker count.  Payload
equality is checked semantically (type, dtype, shape, values) rather
than by pickling whole structures: the worker pipe breaks payload
object sharing, so whole-structure pickle bytes legitimately differ
while every individual value is identical.
"""

import numpy as np
import pytest

from repro.core import CommPattern, make_vpt, run_exchange
from repro.errors import ExperimentError, PlanError, SimMPIError
from repro.network import BGQ
from repro.simmpi import (
    ANY_SOURCE,
    ANY_TAG,
    TIMEOUT,
    FaultPlan,
    SimMPI,
    engine_names,
    run_spmd,
)
from repro.simmpi.analysis import to_chrome_trace
from repro.simmpi.sharded import ShardedSimMPI

WORKER_COUNTS = (1, 2, 4)


def deep_eq(x, y):
    """Semantic equality: exact types, exact dtypes, exact values."""
    if type(x) is not type(y):
        return False
    if isinstance(x, np.ndarray):
        return x.dtype == y.dtype and x.shape == y.shape and np.array_equal(x, y)
    if isinstance(x, (list, tuple)):
        return len(x) == len(y) and all(deep_eq(p, q) for p, q in zip(x, y))
    if isinstance(x, dict):
        return x.keys() == y.keys() and all(deep_eq(v, y[k]) for k, v in x.items())
    return x == y


def assert_same_result(base, got, context=""):
    assert deep_eq(base.returns, got.returns), f"returns diverge {context}"
    assert base.clocks == got.clocks, f"clocks diverge {context}"
    assert base.makespan_us == got.makespan_us, f"makespan diverges {context}"
    assert base.trace == got.trace, f"trace diverges {context}"
    assert base.crashed == got.crashed, f"crashed diverges {context}"
    assert base.fault_events == got.fault_events, f"fault events diverge {context}"


# ----------------------------------------------------------------------
# Scenario process functions (module level: workers fork and re-run them)
# ----------------------------------------------------------------------

def _ring_allreduce(comm):
    K, rank = comm.size, comm.rank
    comm.send((rank + 1) % K, rank, tag=0, words=8)
    _, _, v = yield comm.recv((rank - 1) % K, 0)
    s = yield comm.allreduce(v, op="sum")
    return (v, s)


def _staged_wildcard(comm):
    K, rank = comm.size, comm.rank
    out = []
    for stage in range(3):
        peers = [(rank + d) % K for d in (1, 5, 11)]
        for p in peers:
            comm.send(p, (rank, stage), tag=stage, words=4 + (rank % 3))
        for _ in peers:
            src, _, v = yield comm.recv(ANY_SOURCE, stage)
            out.append((src, v))
        yield comm.barrier()
    return out


def _nbx_timeout(comm):
    K, rank = comm.size, comm.rank
    for j in range(2):
        comm.send((rank * 3 + j + 1) % K, rank, tag=7, words=2)
    got, misses = [], 0
    while misses < 3:
        m = yield comm.recv(ANY_SOURCE, ANY_TAG, timeout_us=50.0)
        if m is TIMEOUT:
            misses += 1
        else:
            got.append(m)
    yield comm.barrier()
    return sorted(got)


def _crash_shrink(comm):
    K, rank = comm.size, comm.rank
    comm.send((rank + 1) % K, rank, tag=1, words=4)
    v = yield comm.recv((rank - 1) % K, 1, timeout_us=20.0)
    # park on a never-matched tag so the scheduled crashes fire while
    # every rank is blocked here, before the shrink
    m = yield comm.recv(ANY_SOURCE, 99, timeout_us=100.0)
    dead = yield comm.shrink()
    s = yield comm.allreduce(1, op="sum")
    return (v is not TIMEOUT, m is TIMEOUT, dead, s)


def _straggler_pipeline(comm):
    K, rank = comm.size, comm.rank
    for r in range(3):
        comm.send((rank + 2) % K, (rank, r), tag=r, words=6)
        m = yield comm.recv((rank - 2) % K, r)
        yield comm.barrier()
    return m


SCENARIOS = {
    "ring_allreduce": (_ring_allreduce, 16, None),
    "staged_wildcard": (_staged_wildcard, 32, None),
    "nbx_timeout": (_nbx_timeout, 24, None),
    "crash_shrink": (_crash_shrink, 16, FaultPlan(crashes={3: 30.0, 9: 55.0}, seed=11)),
    "stragglers": (_straggler_pipeline, 16, FaultPlan(stragglers={2: 1.5, 7: 0.8}, seed=5)),
}


class TestScenarioEquivalence:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bit_identical_to_event_engine(self, name, workers):
        factory, K, plan = SCENARIOS[name]
        base = SimMPI(K, machine=BGQ, trace=True, fault_plan=plan).run(factory)
        got = SimMPI(
            K, machine=BGQ, trace=True, fault_plan=plan,
            engine="sharded", workers=workers,
        ).run(factory)
        assert_same_result(base, got, f"({name}, workers={workers})")

    def test_run_spmd_engine_keyword(self):
        base = run_spmd(16, _ring_allreduce, machine=BGQ, trace=True)
        got = run_spmd(
            16, _ring_allreduce, machine=BGQ, trace=True,
            engine="sharded", workers=2,
        )
        assert_same_result(base, got, "(run_spmd)")

    def test_rerun_is_deterministic(self):
        runs = [
            SimMPI(16, machine=BGQ, trace=True, engine="sharded", workers=2).run(
                _staged_wildcard
            )
            for _ in range(2)
        ]
        assert_same_result(runs[0], runs[1], "(repeat)")


class TestExchangeEquivalence:
    """Full STFW / direct exchanges match across engines, bytes and all."""

    @pytest.fixture(scope="class")
    def pattern(self):
        return CommPattern.random(64, avg_degree=6, hot_processes=3, seed=3, words=4)

    @pytest.mark.parametrize("scheme", ["stfw", "direct"])
    def test_exchange_bit_identical(self, pattern, scheme):
        kw = {"scheme": "direct"} if scheme == "direct" else {}
        vpt = None if scheme == "direct" else make_vpt(64, 2)
        base = run_exchange(pattern, vpt, machine=BGQ, trace=True, **kw)
        got = run_exchange(
            pattern, vpt, machine=BGQ, trace=True,
            engine="sharded", workers=4, **kw,
        )
        assert_same_result(base.run, got.run, f"({scheme})")
        assert deep_eq(base.delivered, got.delivered)
        # the rendered timeline depends only on the RunResult, so the
        # chrome-trace JSON must agree byte for byte
        assert to_chrome_trace(base.run) == to_chrome_trace(got.run)

    def test_dynamic_mode_matches(self, pattern):
        vpt = make_vpt(64, 2)
        base = run_exchange(pattern, vpt, machine=BGQ, trace=True, mode="dynamic")
        got = run_exchange(
            pattern, vpt, machine=BGQ, trace=True, mode="dynamic",
            engine="sharded", workers=2,
        )
        assert_same_result(base.run, got.run, "(dynamic)")


class TestEngineSelectionAPI:
    def test_registry_names(self):
        assert set(engine_names()) >= {"event", "sharded"}

    def test_dispatch_returns_backend_instance(self):
        mpi = SimMPI(8, machine=BGQ, engine="sharded", workers=2)
        assert isinstance(mpi, ShardedSimMPI)
        assert mpi.engine_name == "sharded"
        assert SimMPI(8, machine=BGQ).engine_name == "event"

    def test_unknown_engine_named_in_error(self):
        with pytest.raises(SimMPIError, match="unknown engine 'warp'"):
            SimMPI(8, machine=BGQ, engine="warp")

    def test_workers_requires_sharded(self):
        with pytest.raises(SimMPIError, match="workers=4 requires engine='sharded'"):
            SimMPI(8, machine=BGQ, workers=4)

    def test_sharded_requires_machine(self):
        with pytest.raises(SimMPIError, match="requires a machine"):
            SimMPI(8, engine="sharded", workers=2)

    def test_sharded_rejects_jitter(self):
        with pytest.raises(SimMPIError, match="jitter"):
            SimMPI(8, machine=BGQ, engine="sharded", workers=2, jitter=0.1)

    def test_sharded_rejects_probabilistic_faults_by_name(self):
        plan = FaultPlan(default_drop=0.05, link_flip={(0, 1): 0.5}, seed=1)
        with pytest.raises(SimMPIError) as exc:
            SimMPI(8, machine=BGQ, engine="sharded", workers=2, fault_plan=plan)
        msg = str(exc.value)
        assert "default_drop=0.05" in msg
        assert "link_flip" in msg

    def test_partial_exchange_requires_event_engine(self):
        pattern = CommPattern.random(16, avg_degree=3, seed=2)
        plan = FaultPlan(crashes={3: 10.0}, seed=2)
        with pytest.raises(PlanError, match="on_fault='partial'"):
            run_exchange(
                pattern, make_vpt(16, 2), machine=BGQ,
                fault_plan=plan, on_fault="partial",
                engine="sharded", workers=2,
            )

    def test_experiment_drivers_refuse_sharded_eagerly(self):
        from repro.experiments import faults, recover

        with pytest.raises(ExperimentError, match="engine='event'"):
            faults.run(K=16, engine="sharded")
        with pytest.raises(ExperimentError, match="engine='event'"):
            recover.run(K=16, engine="sharded")


class TestHopCostMemo:
    def test_cache_is_instance_scoped(self):
        a = SimMPI(8, machine=BGQ)
        b = SimMPI(8, machine=BGQ)
        a._send_cost(0, 7, 4)
        assert a._hops_cache and not b._hops_cache

    def test_cache_is_bounded(self, monkeypatch):
        from repro.simmpi import runtime

        monkeypatch.setattr(runtime, "_HOPS_CACHE_MAX", 8)
        mpi = SimMPI(64, machine=BGQ)
        for dest in range(1, 64):
            mpi._send_cost(0, dest, 4)
        assert len(mpi._hops_cache) <= 8


class TestEngineBenchDocument:
    @pytest.fixture(scope="class")
    def doc(self):
        from repro.bench import run_engine_bench

        return run_engine_bench(K=64, workers=2)

    def test_document_validates(self, doc):
        from repro.bench import ENGINE_SCHEMA, validate_bench_json

        assert doc["schema"] == ENGINE_SCHEMA
        assert doc["sweep"] == "engine"
        assert validate_bench_json(doc) == []

    def test_backends_did_the_same_work(self, doc):
        assert doc["rows"]["event"]["events"] == doc["rows"]["sharded"]["events"]
        assert doc["rows"]["event"]["events"] > 0

    def test_mismatched_event_counts_fail_validation(self, doc):
        import copy

        from repro.bench import validate_bench_json

        bad = copy.deepcopy(doc)
        bad["rows"]["sharded"]["events"] += 1
        assert any("same exchange" in p for p in validate_bench_json(bad))

    def test_compare_gates_relative_to_baseline(self, doc):
        from repro.bench import compare_bench

        assert compare_bench(doc, doc) == []
        slower = {
            **doc,
            "rows": {
                **doc["rows"],
                "event": {
                    **doc["rows"]["event"],
                    "events_per_sec": doc["rows"]["event"]["events_per_sec"] / 10,
                },
            },
        }
        assert any("event events/s" in r for r in compare_bench(slower, doc))

    def test_parallel_metrics_gate_only_on_same_core_count(self, doc):
        from repro.bench import compare_bench

        bigger_box = {**doc, "cpus": doc["cpus"] + 15, "speedup": doc["speedup"] * 8}
        # a baseline from a different host: sharded rate and speedup are
        # hardware properties, so only the serial event rate gates
        assert compare_bench(doc, bigger_box) == []

    def test_merge_and_load_roundtrip(self, doc, tmp_path):
        from repro.bench import load_baseline, merge_baseline

        path = str(tmp_path / "baseline.json")
        merged = merge_baseline(path, doc)
        assert "engine" in merged
        assert load_baseline(path, "engine")["K"] == doc["K"]


class TestColumnParallelShim:
    def test_shim_warns_and_matches(self):
        import scipy.sparse as sp

        from repro.spmv.columnparallel import distributed_spmv_colparallel
        from repro.spmv.distributed import distributed_spmv
        from repro.spmv.driver import partition_matrix

        n = 96
        A = (
            sp.random(n, n, density=0.05, random_state=7, format="csr")
            + sp.eye(n, format="csr")
        ).tocsr()
        x = np.arange(n, dtype=float)
        part = partition_matrix(A, 8)
        with pytest.warns(DeprecationWarning, match="layout='column'"):
            old = distributed_spmv_colparallel(A, part, x, machine=BGQ)
        new = distributed_spmv(A, part, x, machine=BGQ, layout="column")
        assert np.array_equal(old.y, new.y)
        assert old.makespan_us == new.makespan_us
