"""Unit tests for the shrink (revoke + agree) recovery primitive."""

import pytest

from repro.errors import DeadlockError, SimMPIError
from repro.network import BGQ
from repro.simmpi import TIMEOUT, FaultPlan, run_spmd


class TestFaultFree:
    def test_agrees_on_empty_dead_set(self):
        def worker(comm):
            dead = yield comm.shrink()
            return dead

        res = run_spmd(4, worker, machine=BGQ)
        assert res.returns == [()] * 4

    def test_aligns_clocks(self):
        """Survivors leave the agreement with identical clocks."""

        def worker(comm):
            if comm.rank == 0:
                yield comm.recv(timeout_us=100.0)  # skew rank 0 forward
            yield comm.shrink()
            return comm.time

        res = run_spmd(3, worker, machine=BGQ)
        assert len(set(res.returns)) == 1
        assert res.returns[0] >= 100.0

    def test_costs_revoke_plus_agreement_rounds(self):
        def worker(comm):
            yield comm.shrink()
            return comm.time

        res = run_spmd(4, worker, machine=BGQ)
        # one revoke round + two tree sweeps over 4 survivors
        expected = (1 + 2 * 2) * BGQ.alpha_us
        assert res.returns[0] == pytest.approx(expected)


class TestWithCrashes:
    def test_agrees_on_crashed_rank(self):
        def worker(comm):
            got = yield comm.recv(timeout_us=50.0)
            assert got is TIMEOUT
            dead = yield comm.shrink()
            return dead

        res = run_spmd(3, worker, machine=BGQ, fault_plan=FaultPlan(crashes={1: 0.0}))
        assert res.crashed == [1]
        for r in (0, 2):
            assert res.returns[r] == (1,)

    def test_crash_due_by_agreement_fires_first(self):
        """A rank whose crash time has passed cannot join the agreement
        even if it reaches the shrink call before its timer fired."""

        def worker(comm):
            if comm.rank != 1:
                yield comm.recv(timeout_us=100.0)  # move survivors past t=50
            dead = yield comm.shrink()
            return dead

        res = run_spmd(3, worker, machine=BGQ, fault_plan=FaultPlan(crashes={1: 50.0}))
        assert res.crashed == [1]
        assert res.returns[0] == (1,)

    def test_future_crash_not_pulled_into_agreement(self):
        """The agreement never warps time forward: a crash scheduled
        after it stays pending and fires later."""

        def worker(comm):
            first = yield comm.shrink()
            assert comm.time < 1e6
            yield comm.recv(timeout_us=2e6)  # block past the crash time
            return (first, "survived")

        res = run_spmd(
            3, worker, machine=BGQ, fault_plan=FaultPlan(crashes={0: 1e6})
        )
        assert res.crashed == [0]  # fired eventually, after the agreement
        assert res.returns[0] is None
        assert res.returns[1] == ((), "survived")
        assert res.returns[2] == ((), "survived")

    def test_purges_inflight_messages(self):
        """Mail posted before the agreement is revoked by it."""

        def worker(comm):
            if comm.rank == 0:
                comm.send(1, "stale", words=1)
                yield comm.shrink()
                return None
            yield comm.shrink()
            got = yield comm.recv(timeout_us=100.0)
            return got

        res = run_spmd(2, worker, machine=BGQ)
        # the pre-shrink message was revoked by the agreement
        assert res.returns[1] is TIMEOUT

    def test_collectives_complete_over_survivors_after_shrink(self):
        def worker(comm):
            yield comm.recv(timeout_us=50.0)
            dead = yield comm.shrink()
            total = yield comm.allreduce(comm.rank, words=1)
            yield comm.barrier()
            return (dead, total)

        res = run_spmd(4, worker, machine=BGQ, fault_plan=FaultPlan(crashes={2: 0.0}))
        for r in (0, 1, 3):
            assert res.returns[r] == ((2,), 0 + 1 + 3)

    def test_bcast_from_dead_root_raises(self):
        def worker(comm):
            yield comm.recv(timeout_us=50.0)
            yield comm.shrink()
            v = yield comm.bcast("x" if comm.rank == 0 else None, root=0)
            return v

        with pytest.raises(SimMPIError, match="root 0"):
            run_spmd(3, worker, machine=BGQ, fault_plan=FaultPlan(crashes={0: 0.0}))

    def test_repeated_shrink_is_idempotent(self):
        def worker(comm):
            yield comm.recv(timeout_us=50.0)
            first = yield comm.shrink()
            second = yield comm.shrink()
            return (first, second)

        res = run_spmd(3, worker, machine=BGQ, fault_plan=FaultPlan(crashes={1: 0.0}))
        assert res.returns[0] == ((1,), (1,))
        assert res.returns[2] == ((1,), (1,))


class TestMisuse:
    def test_partial_participation_deadlocks_with_shrink_detail(self):
        """A survivor that never calls shrink wedges the agreement; the
        deadlock dump names the shrink-blocked ranks."""

        def worker(comm):
            if comm.rank == 0:
                yield comm.recv()  # never joins the shrink, never receives
                return None
            yield comm.shrink()
            return None

        with pytest.raises(DeadlockError) as ei:
            run_spmd(3, worker, machine=BGQ)
        assert "shrink" in str(ei.value)
