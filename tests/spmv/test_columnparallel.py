"""Unit tests for the column-parallel SpMV variant."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import make_vpt
from repro.errors import PlanError
from repro.matrices import generate_matrix
from repro.network import BGQ
from repro.partition import Partition, block_partition, rcm_partition
from repro.spmv import columnparallel_pattern, distributed_spmv, spmv_pattern


def distributed_spmv_col(A, part, x, **kw):
    return distributed_spmv(A, part, x, layout="column", **kw)


@pytest.fixture(scope="module")
def case():
    A = generate_matrix(192, 2300, 48, 1.2, seed=8, values="random")
    part = rcm_partition(A, 16)
    x = np.random.default_rng(3).normal(size=192)
    return A, part, x


class TestPattern:
    def test_transposed_of_rowparallel_on_symmetric(self, case):
        # with a structurally symmetric matrix, the fold pattern is the
        # transpose of the expand pattern (same pairs, reversed roles)
        A, part, _ = case
        row = spmv_pattern(A, part)
        col = columnparallel_pattern(A, part)
        row_pairs = {(int(s), int(d)) for s, d in zip(row.src, row.dst)}
        col_pairs = {(int(s), int(d)) for s, d in zip(col.src, col.dst)}
        assert col_pairs == {(d, s) for s, d in row_pairs}

    def test_message_sizes_count_distinct_rows(self):
        # 2x2 block: process 0 owns rows/cols {0,1}, contributes to
        # rows 2,3 through column 1's entries
        A = sp.csr_matrix(
            np.array(
                [[1, 0, 0, 0],
                 [0, 1, 0, 0],
                 [0, 1, 1, 0],
                 [0, 1, 0, 1]], dtype=float
            )
        )
        p = Partition(np.array([0, 0, 1, 1]), 2)
        pat = columnparallel_pattern(A, p)
        assert pat.sendset(0) == {1: 2}  # partials for rows 2 and 3
        assert pat.sendset(1) == {}

    def test_diagonal_no_communication(self):
        A = sp.identity(32, format="csr")
        pat = columnparallel_pattern(A, block_partition(32, 4))
        assert pat.num_messages == 0

    def test_rectangular_rejected(self, case):
        with pytest.raises(PlanError):
            columnparallel_pattern(sp.random(4, 6, format="csr"), block_partition(4, 2))


class TestDistributed:
    def test_bl_matches_sequential(self, case):
        A, part, x = case
        res = distributed_spmv_col(A, part, x)
        assert np.allclose(res.y, sp.csr_matrix(A) @ x)

    @pytest.mark.parametrize("n", [2, 4])
    def test_stfw_matches_sequential(self, case, n):
        A, part, x = case
        res = distributed_spmv_col(A, part, x, vpt=make_vpt(16, n))
        assert np.allclose(res.y, sp.csr_matrix(A) @ x)

    def test_row_and_column_parallel_agree(self, case):
        A, part, x = case
        yr = distributed_spmv(A, part, x).y
        yc = distributed_spmv_col(A, part, x).y
        assert np.allclose(yr, yc)

    def test_timed(self, case):
        A, part, x = case
        res = distributed_spmv_col(A, part, x, vpt=make_vpt(16, 2), machine=BGQ)
        assert res.makespan_us > 0

    def test_bad_x(self, case):
        A, part, _ = case
        with pytest.raises(PlanError):
            distributed_spmv_col(A, part, np.zeros(5))

    def test_vpt_mismatch(self, case):
        A, part, x = case
        with pytest.raises(PlanError):
            distributed_spmv_col(A, part, x, vpt=make_vpt(32, 2))

    def test_partition_mismatch(self, case):
        A, _, x = case
        with pytest.raises(PlanError):
            distributed_spmv_col(A, block_partition(100, 4), x)
