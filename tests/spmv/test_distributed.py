"""Distributed SpMV on the emulator: numerics must match the sequential product."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import make_vpt
from repro.errors import PlanError
from repro.matrices import generate_matrix
from repro.network import BGQ
from repro.partition import block_partition, random_partition, rcm_partition
from repro.spmv import distributed_spmv, local_spmv, split_matrix


def make_case(n=128, K=8, seed=0):
    A = generate_matrix(n, n * 10, n // 4, 1.0, seed=seed, values="random")
    x = np.random.default_rng(seed).normal(size=n)
    return A, x


class TestSplitMatrix:
    def test_rows_partitioned(self):
        A, x = make_case()
        p = block_partition(128, 8)
        blocks = split_matrix(A, p, x)
        total_rows = sum(b.rows.size for b in blocks)
        assert total_rows == 128
        assert sum(b.nnz for b in blocks) == sp.csr_matrix(A).nnz

    def test_x_conformal(self):
        A, x = make_case()
        p = random_partition(128, 4, seed=1)
        for b in split_matrix(A, p, x):
            assert np.array_equal(b.x_own, x[b.rows])

    def test_local_spmv_matches_rows(self):
        A, x = make_case()
        p = block_partition(128, 4)
        blocks = split_matrix(A, p, x)
        y_ref = sp.csr_matrix(A) @ x
        for b in blocks:
            y_local = local_spmv(b, x)
            assert np.allclose(y_local, y_ref[b.rows])

    def test_bad_x_shape(self):
        A, x = make_case()
        with pytest.raises(PlanError):
            split_matrix(A, block_partition(128, 4), x[:-1])


class TestDistributedSpmvBL:
    def test_matches_sequential(self):
        A, x = make_case()
        p = rcm_partition(A, 8)
        res = distributed_spmv(A, p, x)  # verify=True raises on mismatch
        assert np.allclose(res.y, sp.csr_matrix(A) @ x)

    def test_random_partition_still_correct(self):
        A, x = make_case(seed=3)
        p = random_partition(128, 8, seed=3)
        res = distributed_spmv(A, p, x)
        assert np.allclose(res.y, sp.csr_matrix(A) @ x)

    def test_single_part(self):
        A, x = make_case()
        res = distributed_spmv(A, block_partition(128, 1), x)
        assert np.allclose(res.y, sp.csr_matrix(A) @ x)


class TestDistributedSpmvSTFW:
    @pytest.mark.parametrize("n_dims", [2, 3])
    def test_matches_sequential(self, n_dims):
        A, x = make_case(K=8)
        p = rcm_partition(A, 8)
        res = distributed_spmv(A, p, x, vpt=make_vpt(8, n_dims))
        assert np.allclose(res.y, sp.csr_matrix(A) @ x)

    def test_bl_and_stfw_same_result(self):
        A, x = make_case(seed=5)
        p = rcm_partition(A, 8)
        bl = distributed_spmv(A, p, x)
        stfw = distributed_spmv(A, p, x, vpt=make_vpt(8, 3))
        assert np.allclose(bl.y, stfw.y)

    def test_hypercube_16(self):
        A, x = make_case(n=160, K=16, seed=7)
        p = rcm_partition(A, 16)
        res = distributed_spmv(A, p, x, vpt=make_vpt(16, 4))
        assert np.allclose(res.y, sp.csr_matrix(A) @ x)

    def test_with_machine_timed(self):
        A, x = make_case()
        p = rcm_partition(A, 8)
        res = distributed_spmv(A, p, x, vpt=make_vpt(8, 2), machine=BGQ)
        assert res.makespan_us > 0

    def test_vpt_K_mismatch(self):
        A, x = make_case()
        with pytest.raises(PlanError):
            distributed_spmv(A, block_partition(128, 8), x, vpt=make_vpt(16, 2))
