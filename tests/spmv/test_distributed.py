"""Distributed SpMV on the emulator: numerics must match the sequential product."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import make_vpt
from repro.errors import PlanError
from repro.matrices import generate_matrix
from repro.network import BGQ
from repro.partition import block_partition, random_partition, rcm_partition
from repro.spmv import distributed_spmv, local_spmv, split_matrix


def make_case(n=128, K=8, seed=0):
    A = generate_matrix(n, n * 10, n // 4, 1.0, seed=seed, values="random")
    x = np.random.default_rng(seed).normal(size=n)
    return A, x


class TestSplitMatrix:
    def test_rows_partitioned(self):
        A, x = make_case()
        p = block_partition(128, 8)
        blocks = split_matrix(A, p, x)
        total_rows = sum(b.rows.size for b in blocks)
        assert total_rows == 128
        assert sum(b.nnz for b in blocks) == sp.csr_matrix(A).nnz

    def test_x_conformal(self):
        A, x = make_case()
        p = random_partition(128, 4, seed=1)
        for b in split_matrix(A, p, x):
            assert np.array_equal(b.x_own, x[b.rows])

    def test_local_spmv_matches_rows(self):
        A, x = make_case()
        p = block_partition(128, 4)
        blocks = split_matrix(A, p, x)
        y_ref = sp.csr_matrix(A) @ x
        for b in blocks:
            y_local = local_spmv(b, x)
            assert np.allclose(y_local, y_ref[b.rows])

    def test_bad_x_shape(self):
        A, x = make_case()
        with pytest.raises(PlanError):
            split_matrix(A, block_partition(128, 4), x[:-1])


class TestDistributedSpmvBL:
    def test_matches_sequential(self):
        A, x = make_case()
        p = rcm_partition(A, 8)
        res = distributed_spmv(A, p, x)  # verify=True raises on mismatch
        assert np.allclose(res.y, sp.csr_matrix(A) @ x)

    def test_random_partition_still_correct(self):
        A, x = make_case(seed=3)
        p = random_partition(128, 8, seed=3)
        res = distributed_spmv(A, p, x)
        assert np.allclose(res.y, sp.csr_matrix(A) @ x)

    def test_single_part(self):
        A, x = make_case()
        res = distributed_spmv(A, block_partition(128, 1), x)
        assert np.allclose(res.y, sp.csr_matrix(A) @ x)


class TestDistributedSpmvSTFW:
    @pytest.mark.parametrize("n_dims", [2, 3])
    def test_matches_sequential(self, n_dims):
        A, x = make_case(K=8)
        p = rcm_partition(A, 8)
        res = distributed_spmv(A, p, x, vpt=make_vpt(8, n_dims))
        assert np.allclose(res.y, sp.csr_matrix(A) @ x)

    def test_bl_and_stfw_same_result(self):
        A, x = make_case(seed=5)
        p = rcm_partition(A, 8)
        bl = distributed_spmv(A, p, x)
        stfw = distributed_spmv(A, p, x, vpt=make_vpt(8, 3))
        assert np.allclose(bl.y, stfw.y)

    def test_hypercube_16(self):
        A, x = make_case(n=160, K=16, seed=7)
        p = rcm_partition(A, 16)
        res = distributed_spmv(A, p, x, vpt=make_vpt(16, 4))
        assert np.allclose(res.y, sp.csr_matrix(A) @ x)

    def test_with_machine_timed(self):
        A, x = make_case()
        p = rcm_partition(A, 8)
        res = distributed_spmv(A, p, x, vpt=make_vpt(8, 2), machine=BGQ)
        assert res.makespan_us > 0

    def test_vpt_K_mismatch(self):
        A, x = make_case()
        with pytest.raises(PlanError):
            distributed_spmv(A, block_partition(128, 8), x, vpt=make_vpt(16, 2))


class TestABFT:
    """Tentpole: the checksum-vector cross-check catches injected
    compute flips and recovers by local recomputation."""

    def _blocks(self):
        A, x = make_case()
        p = block_partition(128, 4)
        return A, x, split_matrix(A, p, x)

    def test_checksum_vector_is_column_sum(self):
        from repro.spmv import abft_checksum

        A, x, blocks = self._blocks()
        for b in blocks:
            u = abft_checksum(b)
            ref = np.asarray(
                sp.csr_matrix(A)[b.rows, :].sum(axis=0), dtype=np.float64
            ).ravel()
            assert np.allclose(u, ref)

    def test_clean_multiply_passes_unflagged(self):
        from repro.spmv import checked_spmv

        A, x, blocks = self._blocks()
        y_ref = sp.csr_matrix(A) @ x
        for b in blocks:
            y, caught = checked_spmv(b, x)
            assert caught == 0
            assert np.allclose(y, y_ref[b.rows])

    def test_injected_flip_caught_and_recovered(self):
        from repro.spmv import checked_spmv

        A, x, blocks = self._blocks()
        y_ref = sp.csr_matrix(A) @ x
        total = 0
        for b in blocks:
            y, caught = checked_spmv(
                b, x, flip_prob=1.0, flip_seed=5, iteration=0
            )
            total += caught
            # recovery: the returned product is the *clean* one
            assert np.allclose(y, y_ref[b.rows])
        assert total == len(blocks)  # p=1: every rank flipped, all caught

    def test_injection_is_deterministic_in_the_key(self):
        from repro.spmv import checked_spmv

        A, x, blocks = self._blocks()
        b = blocks[0]
        y1, c1 = checked_spmv(b, x, flip_prob=0.5, flip_seed=7, iteration=3)
        y2, c2 = checked_spmv(b, x, flip_prob=0.5, flip_seed=7, iteration=3)
        assert c1 == c2 and np.allclose(y1, y2)

    def test_persistent_spmv_abft_counter(self):
        """End to end through PersistentSpMV.multiply: every injected
        high-exponent flip is caught and the product stays correct."""
        from repro.simmpi import FaultPlan
        from repro.spmv import PersistentSpMV

        A, x = make_case()
        p = block_partition(128, 4)
        spmv = PersistentSpMV(A, p, abft=True, verify=False)
        plan = FaultPlan(compute_flips={r: 1.0 for r in range(4)}, seed=9)
        y, _ = spmv.multiply(x, fault_plan=plan, iteration=0)
        assert spmv.abft_flips_caught == 4
        assert np.allclose(y, sp.csr_matrix(A) @ x)

    def test_abft_off_without_flips_uses_plain_kernel(self):
        from repro.spmv import PersistentSpMV

        A, x = make_case()
        p = block_partition(128, 4)
        spmv = PersistentSpMV(A, p, verify=False)
        y, _ = spmv.multiply(x)
        assert spmv.abft_flips_caught == 0
        assert np.allclose(y, sp.csr_matrix(A) @ x)
