"""Unit tests for the cost-model SpMV driver."""

import math

import pytest

from repro.errors import ExperimentError
from repro.matrices import generate_matrix
from repro.network import BGQ, CRAY_XC40
from repro.spmv import partition_matrix, run_spmv_schemes


def hotspot_matrix(n=2048, seed=0):
    # dense rows + moderate cv: a latency-bound instance in miniature
    return generate_matrix(n, n * 12, n // 2, 2.0, dense_rows=3, seed=seed)


class TestRunSpmvSchemes:
    def test_all_dims_by_default(self):
        exp = run_spmv_schemes(hotspot_matrix(), 64, BGQ)
        assert exp.schemes == ["BL", "STFW2", "STFW3", "STFW4", "STFW5", "STFW6"]

    def test_explicit_dims(self):
        exp = run_spmv_schemes(hotspot_matrix(), 64, BGQ, dims=[1, 3])
        assert exp.schemes == ["BL", "STFW3"]

    def test_times_filled_in(self):
        exp = run_spmv_schemes(hotspot_matrix(), 64, BGQ, dims=[1, 2])
        for r in exp.results.values():
            assert not math.isnan(r.stats.comm_time_us)
            assert r.stats.total_time_us > r.stats.comm_time_us  # compute added

    def test_paper_shape_mmax_drops_vavg_rises(self):
        exp = run_spmv_schemes(hotspot_matrix(), 128, BGQ)
        bl = exp["BL"].stats
        high = exp["STFW7"].stats
        assert high.mmax < bl.mmax / 3
        assert high.vavg > bl.vavg

    def test_paper_shape_stfw_wins_comm_time(self):
        exp = run_spmv_schemes(hotspot_matrix(), 128, BGQ)
        bl_comm = exp["BL"].stats.comm_time_us
        best = exp.best_stfw("comm").stats.comm_time_us
        assert best < bl_comm

    def test_mmax_within_bound(self):
        exp = run_spmv_schemes(hotspot_matrix(), 64, BGQ)
        from repro.core import make_vpt

        for r in exp.results.values():
            bound = make_vpt(64, r.n_dims).max_message_count_bound()
            assert r.stats.mmax <= bound

    def test_precomputed_partition_reused(self):
        A = hotspot_matrix()
        part = partition_matrix(A, 64)
        a = run_spmv_schemes(A, 64, BGQ, dims=[1], partition=part)
        b = run_spmv_schemes(A, 64, CRAY_XC40, dims=[1], partition=part)
        # same machine-independent metrics, different times
        assert a["BL"].stats.mmax == b["BL"].stats.mmax
        assert a["BL"].stats.comm_time_us != b["BL"].stats.comm_time_us

    def test_partition_K_mismatch(self):
        A = hotspot_matrix()
        part = partition_matrix(A, 32)
        with pytest.raises(ExperimentError):
            run_spmv_schemes(A, 64, BGQ, partition=part)

    def test_unknown_partitioner(self):
        with pytest.raises(ExperimentError):
            partition_matrix(hotspot_matrix(), 8, partitioner="patoh")

    def test_best_stfw_requires_stfw(self):
        exp = run_spmv_schemes(hotspot_matrix(), 64, BGQ, dims=[1])
        with pytest.raises(ExperimentError):
            exp.best_stfw()

    def test_xc40_benefits_more_than_bgq(self):
        # Section 6.4: the more latency-bound machine gains more from STFW
        A = hotspot_matrix(seed=4)
        part = partition_matrix(A, 128)
        bgq = run_spmv_schemes(A, 128, BGQ, partition=part)
        xc = run_spmv_schemes(A, 128, CRAY_XC40, partition=part)
        gain_bgq = bgq["BL"].stats.comm_time_us / bgq.best_stfw("comm").stats.comm_time_us
        gain_xc = xc["BL"].stats.comm_time_us / xc.best_stfw("comm").stats.comm_time_us
        assert gain_xc > gain_bgq
