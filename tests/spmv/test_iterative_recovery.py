"""Acceptance tests: iterative SpMV that survives rank crashes.

The issue's headline scenario: >= 50 iterations at K = 64 with two
scheduled crashes must complete via shrink-recovery and produce a final
vector **bit-identical** to the fault-free host reference — crashes
move ownership of rows, never their values.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ExperimentError, RecoveryError
from repro.metrics import recovery_stats, recovery_table
from repro.network import BGQ
from repro.simmpi import FaultPlan
from repro.spmv import (
    iterative_reference,
    partition_matrix,
    run_iterative_with_recovery,
)

K = 64
ITERATIONS = 56
INTERVAL = 8
SEED = 5


def make_matrix(n=640, nnz_per_row=5, seed=11):
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n), nnz_per_row)
    cols = rng.integers(0, n, size=nnz_per_row * n)
    vals = rng.standard_normal(nnz_per_row * n)
    A = sp.coo_matrix((vals, (rows, cols)), shape=(n, n))
    return (A + sp.eye(n)).tocsr()


@pytest.fixture(scope="module")
def A():
    return make_matrix()


@pytest.fixture(scope="module")
def reference(A):
    x0 = np.random.default_rng(SEED).standard_normal(A.shape[0])
    return iterative_reference(A, x0, ITERATIONS, seed=SEED)


@pytest.fixture(scope="module")
def fault_free(A):
    return run_iterative_with_recovery(
        A,
        K,
        iterations=ITERATIONS,
        n_dims=2,
        checkpoint_interval=INTERVAL,
        seed=SEED,
        machine=BGQ,
        partitioner="block",
    )


def two_crash_plan(fault_free):
    return FaultPlan(
        crashes={9: 0.3 * fault_free.makespan_us, 41: 0.6 * fault_free.makespan_us}
    )


@pytest.fixture(scope="module")
def crashed(A, fault_free):
    return run_iterative_with_recovery(
        A,
        K,
        iterations=ITERATIONS,
        n_dims=2,
        checkpoint_interval=INTERVAL,
        seed=SEED,
        machine=BGQ,
        partitioner="block",
        fault_plan=two_crash_plan(fault_free),
    )


class TestFaultFree:
    def test_matches_host_reference_bitwise(self, fault_free, reference):
        assert np.array_equal(fault_free.x, reference)

    def test_no_recoveries(self, fault_free):
        assert fault_free.events == []
        assert fault_free.dead == ()
        assert fault_free.final_K == K
        assert fault_free.scheme == "STFW2"


class TestTwoCrashAcceptance:
    def test_final_vector_bitwise_equal_to_reference(self, crashed, reference):
        assert np.array_equal(crashed.x, reference)

    def test_both_crashes_recovered_separately(self, crashed):
        assert crashed.dead == (9, 41)
        assert crashed.final_K == 62
        assert len(crashed.events) == 2
        assert crashed.events[0].new_dead == (9,)
        assert crashed.events[1].new_dead == (9, 41)

    def test_rollbacks_land_on_checkpoint_boundaries(self, crashed):
        for e in crashed.events:
            assert e.rollback_iteration % INTERVAL == 0
            assert e.rollback_iteration <= e.detected_iteration
            assert e.recovery_latency_us >= 0.0

    def test_post_shrink_plan_respects_message_bound(self, crashed):
        # 62 = 2 * 31 re-dimensions to T_2(31, 2): bound 31 + 1 - 2
        assert crashed.message_bound == 31
        assert crashed.final_mmax <= crashed.message_bound

    def test_recovery_costs_wall_time(self, crashed, fault_free):
        assert crashed.makespan_us > fault_free.makespan_us

    def test_checkpoint_restore_is_bit_identical_to_replay(self, A, crashed):
        """Determinism: any complete checkpoint equals the uninterrupted
        host iteration stopped at the same iteration."""
        store = crashed.store
        n = A.shape[0]
        x0 = np.random.default_rng(SEED).standard_normal(n)
        its = sorted(
            it for it in range(0, ITERATIONS + 1, INTERVAL) if store.is_complete(it)
        )
        assert len(its) >= 3
        for it in its:
            assert np.array_equal(
                store.restore_vector(it, n),
                iterative_reference(A, x0, it, seed=SEED),
            )

    def test_run_is_deterministic(self, A, fault_free, crashed):
        again = run_iterative_with_recovery(
            A,
            K,
            iterations=ITERATIONS,
            n_dims=2,
            checkpoint_interval=INTERVAL,
            seed=SEED,
            machine=BGQ,
            partitioner="block",
            fault_plan=two_crash_plan(fault_free),
        )
        assert np.array_equal(again.x, crashed.x)
        assert again.makespan_us == crashed.makespan_us
        assert [
            (e.detected_iteration, e.rollback_iteration, e.new_dead)
            for e in again.events
        ] == [
            (e.detected_iteration, e.rollback_iteration, e.new_dead)
            for e in crashed.events
        ]


class TestOtherSchemes:
    def test_three_dimensional_topology(self, A, fault_free, reference):
        res = run_iterative_with_recovery(
            A,
            K,
            iterations=ITERATIONS,
            n_dims=3,
            checkpoint_interval=INTERVAL,
            seed=SEED,
            machine=BGQ,
            partitioner="block",
            fault_plan=two_crash_plan(fault_free),
        )
        assert res.scheme == "STFW3"
        assert np.array_equal(res.x, reference)
        # 62 supports only two dimensions: the rebuild re-dimensions down
        assert res.final_K == 62 and res.message_bound == 31

    def test_baseline_direct_scheme(self, A):
        n = A.shape[0]
        res = run_iterative_with_recovery(
            A,
            8,
            iterations=20,
            n_dims=1,
            checkpoint_interval=4,
            seed=SEED,
            machine=BGQ,
            partitioner="block",
            fault_plan=FaultPlan(crashes={3: 500.0}),
        )
        x0 = np.random.default_rng(SEED).standard_normal(n)
        assert res.scheme == "BL"
        assert res.dead == (3,)
        assert np.array_equal(res.x, iterative_reference(A, x0, 20, seed=SEED))

    def test_shrink_to_prime_survivor_count_falls_back_to_direct(self, A):
        """8 - 1 = 7 survivors is prime: the rebuilt epoch runs direct
        exchange, and the bound becomes the flat K' - 1."""
        n = A.shape[0]
        res = run_iterative_with_recovery(
            A,
            8,
            iterations=16,
            n_dims=2,
            checkpoint_interval=4,
            seed=SEED,
            machine=BGQ,
            partitioner="block",
            fault_plan=FaultPlan(crashes={2: 400.0}),
        )
        x0 = np.random.default_rng(SEED).standard_normal(n)
        assert res.final_K == 7
        assert res.message_bound == 6
        assert np.array_equal(res.x, iterative_reference(A, x0, 16, seed=SEED))


class TestMetricsIntegration:
    def test_recovery_stats_and_table(self, crashed):
        s = recovery_stats(crashed)
        assert s.recoveries == 2
        assert s.lost_iterations == sum(e.lost_iterations for e in crashed.events)
        assert s.bound_ok
        text = recovery_table([("2 crashes", s)])
        assert "STFW2" in text and "62" in text and "<=31" in text


class TestValidation:
    def test_bad_iterations_rejected(self, A):
        with pytest.raises(ExperimentError, match="iterations"):
            run_iterative_with_recovery(A, 8, iterations=0)

    def test_bad_interval_rejected(self, A):
        with pytest.raises(ExperimentError, match="checkpoint_interval"):
            run_iterative_with_recovery(A, 8, iterations=4, checkpoint_interval=0)

    def test_partition_k_mismatch_rejected(self, A):
        part = partition_matrix(A, 4, partitioner="block")
        with pytest.raises(ExperimentError, match="K="):
            run_iterative_with_recovery(A, 8, iterations=4, partition=part)

    def test_unrecoverable_run_raises_recovery_error(self, A):
        """Every rank dead before the first agreement: nothing survives
        to assemble the final vector."""
        plan = FaultPlan(crashes={r: 0.0 for r in range(4)})
        with pytest.raises(RecoveryError):
            run_iterative_with_recovery(
                A, 4, iterations=4, machine=BGQ, fault_plan=plan, n_dims=2
            )
