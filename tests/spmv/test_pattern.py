"""Unit tests for SpMV pattern extraction."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import PlanError
from repro.matrices import generate_matrix
from repro.partition import Partition, block_partition, random_partition
from repro.spmv import nnz_per_part, spmv_needed_entries, spmv_pattern


def tiny_matrix():
    # 4x4: row i needs x entries at its nonzero columns
    #  [d . a .]
    #  [. d . b]
    #  [c . d .]
    #  [. e . d]
    rows = [0, 0, 1, 1, 2, 2, 3, 3]
    cols = [0, 2, 1, 3, 0, 2, 1, 3]
    return sp.csr_matrix((np.ones(8), (rows, cols)), shape=(4, 4))


class TestSpmvPattern:
    def test_tiny_hand_checked(self):
        A = tiny_matrix()
        p = Partition(np.array([0, 0, 1, 1]), 2)
        pat = spmv_pattern(A, p)
        # P0 owns rows/x {0,1}; row0 needs x2 (P1), row1 needs x3 (P1)
        # P1 owns rows/x {2,3}; row2 needs x0 (P0), row3 needs x1 (P0)
        assert pat.sendset(0) == {1: 2}
        assert pat.sendset(1) == {0: 2}

    def test_distinct_columns_counted_once(self):
        # two rows of the same part needing the same remote x entry
        rows = [0, 1]
        cols = [3, 3]
        A = sp.csr_matrix((np.ones(2), (rows, cols)), shape=(4, 4))
        p = Partition(np.array([0, 0, 1, 1]), 2)
        pat = spmv_pattern(A, p)
        assert pat.sendset(1) == {0: 1}  # x3 sent once, not twice

    def test_diagonal_matrix_no_communication(self):
        A = sp.identity(64, format="csr")
        p = block_partition(64, 8)
        pat = spmv_pattern(A, p)
        assert pat.num_messages == 0

    def test_single_part_no_communication(self):
        A = generate_matrix(128, 1024, 32, 0.5, seed=0)
        pat = spmv_pattern(A, block_partition(128, 1))
        assert pat.num_messages == 0

    def test_symmetric_pattern_symmetric_messages(self):
        # structurally symmetric matrix => p talks to q iff q talks to p
        A = generate_matrix(256, 4096, 64, 1.0, seed=1)
        pat = spmv_pattern(A, block_partition(256, 8))
        pairs = {(int(s), int(d)) for s, d in zip(pat.src, pat.dst)}
        assert pairs == {(d, s) for s, d in pairs}

    def test_dense_column_makes_hotspot(self):
        # a dense column j means owner(j) sends to nearly every part
        n, K = 256, 16
        rows = np.arange(n)
        cols = np.zeros(n, dtype=int)
        A = sp.csr_matrix((np.ones(n), (rows, cols)), shape=(n, n))
        A = A + sp.identity(n)
        pat = spmv_pattern(A, block_partition(n, K))
        assert pat.sent_counts()[0] == K - 1

    def test_rectangular_rejected(self):
        A = sp.random(4, 6, density=0.5, format="csr")
        with pytest.raises(PlanError):
            spmv_pattern(A, block_partition(4, 2))

    def test_partition_size_mismatch(self):
        A = sp.identity(8, format="csr")
        with pytest.raises(PlanError):
            spmv_pattern(A, block_partition(4, 2))


class TestNeededEntries:
    def test_matches_pattern_sizes(self):
        A = generate_matrix(200, 2400, 50, 1.2, seed=2)
        p = random_partition(200, 8, seed=0)
        pat = spmv_pattern(A, p)
        needed = spmv_needed_entries(A, p)
        for q in range(8):
            for pp, idx in needed[q].items():
                assert pat.sendset(pp)[q] == idx.size

    def test_indices_are_sorted_and_owned_by_sender(self):
        A = generate_matrix(200, 2400, 50, 1.2, seed=3)
        p = random_partition(200, 8, seed=1)
        needed = spmv_needed_entries(A, p)
        for q in range(8):
            for pp, idx in needed[q].items():
                assert (np.diff(idx) > 0).all()
                assert (p.parts[idx] == pp).all()

    def test_no_self_entries(self):
        A = generate_matrix(100, 1200, 30, 0.8, seed=4)
        p = block_partition(100, 4)
        needed = spmv_needed_entries(A, p)
        for q in range(4):
            assert q not in needed[q]

    def test_empty_for_diagonal(self):
        A = sp.identity(16, format="csr")
        needed = spmv_needed_entries(A, block_partition(16, 4))
        assert all(d == {} for d in needed)


class TestNnzPerPart:
    def test_sums_to_total(self):
        A = generate_matrix(300, 3000, 60, 1.0, seed=5)
        p = random_partition(300, 8, seed=2)
        loads = nnz_per_part(A, p)
        assert loads.sum() == sp.csr_matrix(A).nnz

    def test_balanced_partition_balanced_loads(self):
        A = generate_matrix(512, 8192, 64, 0.3, seed=6, dense_rows=0)
        from repro.partition import rcm_partition

        p = rcm_partition(A, 8)
        loads = nnz_per_part(A, p)
        assert loads.max() / loads.mean() < 1.5
