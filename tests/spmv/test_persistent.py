"""Unit tests for the persistent-pattern SpMV."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import make_vpt
from repro.errors import PlanError
from repro.matrices import generate_matrix
from repro.network import BGQ
from repro.partition import block_partition, rcm_partition
from repro.spmv import PersistentSpMV


@pytest.fixture(scope="module")
def case():
    A = generate_matrix(160, 1800, 40, 1.0, seed=4, values="random")
    part = rcm_partition(A, 16)
    x = np.random.default_rng(1).normal(size=160)
    return A, part, x


class TestMultiply:
    def test_bl_correct(self, case):
        A, part, x = case
        spmv = PersistentSpMV(A, part)
        y, t = spmv.multiply(x)
        assert np.allclose(y, sp.csr_matrix(A) @ x)

    def test_stfw_correct(self, case):
        A, part, x = case
        spmv = PersistentSpMV(A, part, vpt=make_vpt(16, 3))
        y, _ = spmv.multiply(x)
        assert np.allclose(y, sp.csr_matrix(A) @ x)

    def test_repeated_iterations_stay_correct(self, case):
        A, part, x = case
        spmv = PersistentSpMV(A, part, vpt=make_vpt(16, 4))
        y = x
        for _ in range(3):
            y, _ = spmv.multiply(y)  # verify=True checks internally
        assert np.isfinite(y).all()

    def test_timed_iterations(self, case):
        A, part, x = case
        spmv = PersistentSpMV(A, part, vpt=make_vpt(16, 2), machine=BGQ)
        _, t = spmv.multiply(x)
        assert t > 0

    def test_average_time(self, case):
        A, part, x = case
        spmv = PersistentSpMV(A, part, vpt=make_vpt(16, 2), machine=BGQ)
        avg = spmv.average_time_us(x, iterations=3)
        assert avg > 0

    def test_setup_is_amortized(self, case):
        A, part, x = case
        spmv = PersistentSpMV(A, part, vpt=make_vpt(16, 3))
        plan_before = spmv.plan
        spmv.multiply(x)
        assert spmv.plan is plan_before  # no rebuild per iteration


class TestValidation:
    def test_partition_mismatch(self, case):
        A, _, _ = case
        with pytest.raises(PlanError):
            PersistentSpMV(A, block_partition(80, 8))

    def test_vpt_mismatch(self, case):
        A, part, _ = case
        with pytest.raises(PlanError):
            PersistentSpMV(A, part, vpt=make_vpt(32, 2))

    def test_bad_x_shape(self, case):
        A, part, _ = case
        spmv = PersistentSpMV(A, part)
        with pytest.raises(PlanError):
            spmv.multiply(np.zeros(3))

    def test_bad_iterations(self, case):
        A, part, x = case
        spmv = PersistentSpMV(A, part)
        with pytest.raises(PlanError):
            spmv.average_time_us(x, iterations=0)

    def test_rectangular_rejected(self):
        with pytest.raises(PlanError):
            PersistentSpMV(sp.random(4, 6, format="csr"), block_partition(4, 2))
