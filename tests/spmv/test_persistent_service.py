"""Unit tests for the self-healing persistent exchange service.

Small-K (16) scenarios walking the escalation ladder one rung at a
time: healthy drift absorption, transient-crash recovery, repeated
crash hardening into a shrink, and flaky-node degraded accounting.
The chaos soak (``tests/experiments/test_chaos.py``) exercises the
same machinery end to end; these tests pin the per-rung semantics.
"""

import numpy as np
import pytest

from repro.core import CommPattern, PatternDelta
from repro.core.dimensioning import make_vpt
from repro.errors import PlanError
from repro.network import BGQ
from repro.simmpi import FaultPlan, PolicyConfig
from repro.spmv import PersistentExchangeService

K = 16


def make_service(seed=3, **kw):
    pattern = CommPattern.random(K, avg_degree=4, seed=seed)
    cfg = kw.pop("config", PolicyConfig(suspect_after=1, shrink_after=2))
    return PersistentExchangeService(
        pattern, make_vpt(K, 2), machine=BGQ, config=cfg, **kw
    )


def makespan_hint(service):
    """Virtual makespan of one fault-free epoch (for crash timing)."""
    return service.run_epoch().makespan_us


class TestConstruction:
    def test_k_mismatch_rejected(self):
        pattern = CommPattern.random(K, avg_degree=4, seed=0)
        with pytest.raises(PlanError):
            PersistentExchangeService(pattern, make_vpt(8, 2))

    def test_initial_state(self):
        svc = make_service()
        assert svc.epoch == 0
        assert svc.repairs == 0
        assert svc.full_rebuilds == 0
        assert svc.dead == frozenset()


class TestHealthyDrift:
    def test_drift_epochs_repair_without_rebuilds(self):
        svc = make_service()
        for step in range(5):
            delta = PatternDelta.random(svc.pattern, 0.10, seed=40 + step)
            report = svc.run_epoch(delta)
            assert report.action == "healthy"
            assert report.missing == ()
            assert report.completion_rate == 1.0
            assert report.repaired == (delta.num_changes > 0)
        assert svc.full_rebuilds == 0
        assert svc.repairs > 0
        # validate=True cross-checks every repair byte-identical
        assert svc.side_table_checks == svc.repairs

    def test_empty_delta_is_a_noop_epoch(self):
        svc = make_service()
        report = svc.run_epoch(PatternDelta(K))
        assert report.repaired is False
        assert svc.repairs == 0
        assert report.action == "healthy"


class TestTransientCrash:
    def test_crash_escalates_then_recovers(self):
        svc = make_service()
        hint = makespan_hint(svc)
        victim = int(svc.pattern.src[0])

        hit = svc.run_epoch(
            fault_plan=FaultPlan(crashes={victim: 0.5 * hint})
        )
        assert hit.action == "reroute"
        assert hit.crashed == (victim,)
        # pairs touching the crashed rank are uncountable, not failed
        assert hit.missing == ()
        assert hit.completion_rate == 1.0
        assert svc.dead == frozenset()

        # next epoch probes the suspect on the tolerant rung...
        probe = svc.run_epoch()
        assert probe.suspects == (victim,)
        assert probe.action == "reroute"
        assert probe.missing == ()

        # ...and a clean probe resets the streak: healthy again
        calm = svc.run_epoch()
        assert calm.suspects == ()
        assert calm.action == "healthy"
        assert svc.shrink_replans == 0


class TestShrink:
    def test_repeated_crash_hardens_into_shrink(self):
        svc = make_service()
        hint = makespan_hint(svc)
        victim = int(svc.pattern.src[0])
        plan = FaultPlan(crashes={victim: 0.5 * hint})

        svc.run_epoch(fault_plan=plan)
        report = svc.run_epoch(fault_plan=plan)  # streak == shrink_after
        assert report.action == "shrink"
        assert report.dead == (victim,)
        assert svc.dead == frozenset({victim})
        assert svc.shrink_replans == 1
        # the crash-mask went through the incremental repair path
        assert svc.full_rebuilds == 0
        # no live edge touches the dead rank any more
        assert not np.isin(svc.pattern.src, victim).any()
        assert not np.isin(svc.pattern.dst, victim).any()

    def test_post_shrink_epochs_complete_fully(self):
        svc = make_service()
        hint = makespan_hint(svc)
        victim = int(svc.pattern.src[0])
        plan = FaultPlan(crashes={victim: 0.5 * hint})
        svc.run_epoch(fault_plan=plan)
        svc.run_epoch(fault_plan=plan)

        for _ in range(3):
            report = svc.run_epoch()
            assert report.missing == ()
            assert report.completion_rate == 1.0
            assert report.dead == (victim,)

    def test_drift_continues_across_the_shrink(self):
        svc = make_service()
        hint = makespan_hint(svc)
        victim = int(svc.pattern.src[0])
        plan = FaultPlan(crashes={victim: 0.5 * hint})
        svc.run_epoch(fault_plan=plan)
        svc.run_epoch(fault_plan=plan)
        rebuilds = svc.full_rebuilds
        for step in range(3):
            delta = PatternDelta.random(svc.pattern, 0.10, seed=70 + step)
            report = svc.run_epoch(delta)
            assert report.missing == ()
        assert svc.full_rebuilds == rebuilds
        # dead rank never re-enters the pattern through drift
        assert not np.isin(svc.pattern.src, victim).any()
        assert not np.isin(svc.pattern.dst, victim).any()


class TestDegraded:
    def test_flaky_node_losses_are_named(self):
        """Every inbound link of one live rank drops: the pairs headed
        to it are countable (nobody crashed) and must be reported
        missing, pair by pair."""
        svc = make_service()
        flaky = int(svc.pattern.dst[0])
        drops = {(s, flaky): 1.0 for s in range(K) if s != flaky}
        report = svc.run_epoch(
            fault_plan=FaultPlan(link_drop=drops, seed=5)
        )
        assert report.action == "degraded"
        assert report.completion_rate < 1.0
        assert svc.degraded_epochs == 1
        pairs_to_flaky = {
            (int(s), int(d))
            for s, d in zip(svc.pattern.src, svc.pattern.dst)
            if int(d) == flaky
        }
        assert set(report.missing) == pairs_to_flaky
        assert report.delivered == report.expected - len(pairs_to_flaky)


class TestFaultPlanMerging:
    def test_with_dead_adds_t0_crashes(self):
        svc = make_service()
        svc.policy.declare_dead([3])
        fp = svc._with_dead(None)
        assert fp.crashes == {3: 0.0}

    def test_with_dead_preserves_caller_faults(self):
        svc = make_service()
        svc.policy.declare_dead([3])
        caller = FaultPlan(crashes={5: 7.0}, stragglers={1: 4.0})
        fp = svc._with_dead(caller)
        assert fp.crashes == {5: 7.0, 3: 0.0}
        assert fp.stragglers == {1: 4.0}
        # the caller's plan is not mutated
        assert caller.crashes == {5: 7.0}

    def test_no_dead_passes_plan_through(self):
        svc = make_service()
        caller = FaultPlan(crashes={5: 7.0})
        assert svc._with_dead(caller) is caller
        assert svc._with_dead(None) is None


class TestDeltaMasking:
    def test_mask_drops_edges_touching_the_dead(self):
        svc = make_service()
        svc.policy.declare_dead([2])
        delta = PatternDelta(
            K,
            add_src=np.array([2, 4], dtype=np.int64),
            add_dst=np.array([5, 2], dtype=np.int64),
            add_size=np.array([8, 8], dtype=np.int64),
            remove_src=np.array([2], dtype=np.int64),
            remove_dst=np.array([7], dtype=np.int64),
        )
        masked = svc._mask_delta(delta)
        assert masked.add_src.size == 0
        assert masked.remove_src.size == 0

    def test_mask_keeps_live_edges(self):
        svc = make_service()
        svc.policy.declare_dead([2])
        delta = PatternDelta(
            K,
            add_src=np.array([2, 4], dtype=np.int64),
            add_dst=np.array([5, 6], dtype=np.int64),
            add_size=np.array([8, 9], dtype=np.int64),
        )
        masked = svc._mask_delta(delta)
        assert masked.add_src.tolist() == [4]
        assert masked.add_dst.tolist() == [6]
        assert masked.add_size.tolist() == [9]

    def test_no_dead_returns_delta_unchanged(self):
        svc = make_service()
        delta = PatternDelta.random(svc.pattern, 0.10, seed=1)
        assert svc._mask_delta(delta) is delta


class TestCorruptionRung:
    """Tentpole: persistent corruption escalates to quarantine, heals
    through the integrity breaker's half-open probe, and undetected
    corruption never reaches the caller."""

    @pytest.fixture()
    def corrupt_setup(self):
        from repro.experiments.faults import busiest_forwarder

        pattern = CommPattern.random(K, avg_degree=4, seed=3)
        cfg = PolicyConfig(
            suspect_after=1,
            breaker_threshold=2,
            breaker_cooldown=2,
            quarantine_after=2,
            seed=3,
        )
        svc = PersistentExchangeService(
            pattern, make_vpt(K, 2), machine=BGQ, config=cfg
        )
        cf = busiest_forwarder(pattern, make_vpt(K, 2))
        plan = FaultPlan(corrupt_forwarders={cf: 1.0}, seed=21)
        return svc, cf, plan

    def test_persistent_corruption_reaches_quarantine(self, corrupt_setup):
        svc, cf, plan = corrupt_setup
        actions = []
        quarantined = set()
        for _ in range(6):
            r = svc.run_epoch(fault_plan=plan)
            actions.append(r.action)
            quarantined.update(r.quarantined)
        assert "quarantine" in actions
        assert quarantined == {cf}
        assert svc.detected_corruptions > 0
        assert svc.quarantine_epochs > 0
        # quarantine is containment, not amputation: nothing is dead
        assert not svc.dead

    def test_quarantined_epochs_deliver_clean_payloads(self, corrupt_setup):
        svc, cf, plan = corrupt_setup
        last = None
        for _ in range(6):
            last = svc.run_epoch(fault_plan=plan)
        assert last.action == "quarantine"
        assert last.missing == () and last.corrupt_pairs == ()
        for dst, msgs in enumerate(last.result.delivered):
            for src, payload in msgs:
                assert (np.asarray(payload) == src * K + dst).all()

    def test_quarantine_lifts_after_clean_probe(self, corrupt_setup):
        svc, cf, plan = corrupt_setup
        for _ in range(5):
            svc.run_epoch(fault_plan=plan)
        assert svc.policy.quarantined() == (cf,)
        # corruption stops: the half-open probe sees the forwarder
        # clean and the quarantine lifts within the cooldown window
        actions = [svc.run_epoch().action for _ in range(6)]
        assert svc.policy.quarantined() == ()
        assert actions[-1] == "healthy"

    def test_detection_escalates_within_the_epoch(self, corrupt_setup):
        """The first corrupt epoch starts on the healthy fast path;
        endpoint verification catches the damage and the same epoch
        re-runs tolerant — the caller never sees a corrupt payload."""
        svc, cf, plan = corrupt_setup
        r = svc.run_epoch(fault_plan=plan)
        assert r.action != "healthy"
        assert r.detected_corruptions > 0
        assert r.missing == ()
        for dst, msgs in enumerate(r.result.delivered):
            for src, payload in msgs:
                assert (np.asarray(payload) == src * K + dst).all()

    def test_epoch_report_integrity_fields_default_clean(self):
        svc = make_service()
        r = svc.run_epoch()
        assert r.detected_corruptions == 0
        assert r.implicated == () and r.quarantined == ()
        assert r.corrupt_pairs == ()
        assert r.action == "healthy"

    def test_endpoint_check_skips_dead_rank_slots(self):
        """Regression: a crashed rank's ``delivered`` slot is ``None``
        (not an empty list) — the endpoint integrity check must skip
        it, not iterate it.  Hit in long soaks whenever a shrunk
        service returns to the planned fast path."""
        svc = make_service()
        pat = svc.pattern
        delivered = [[] for _ in range(K)]
        victim = int(pat.dst[0])
        delivered[victim] = None
        for s, d, w in zip(pat.src, pat.dst, pat.size):
            if int(d) != victim:
                delivered[int(d)].append(
                    (int(s), np.full(int(w), int(s) * K + int(d), np.int64))
                )
        result = type("R", (), {"delivered": delivered})()
        assert svc._corrupt_delivered(result, pat) == ()

    def test_post_shrink_endpoint_check_over_the_dead(self):
        """End-to-end shape of the same regression: epochs after a
        shrink carry a ``None`` slot for the dead rank through every
        rung's endpoint verification without tripping it."""
        svc = make_service()
        hint = makespan_hint(svc)
        victim = int(svc.pattern.src[0])
        plan = FaultPlan(crashes={victim: 0.5 * hint})
        svc.run_epoch(fault_plan=plan)
        svc.run_epoch(fault_plan=plan)
        assert svc.dead == frozenset({victim})
        for _ in range(3):
            r = svc.run_epoch()
            assert r.corrupt_pairs == ()
            assert r.missing == ()
